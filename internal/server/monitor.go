package server

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"pascalr"
	"pascalr/internal/obs"
)

// metricsPayload is the /metrics.json document: serving-layer gauges,
// the live engine counters, and a per-relation statistics snapshot.
type metricsPayload struct {
	Sessions sessionMetrics      `json:"sessions"`
	Counters pascalr.Stats       `json:"counters"`
	Tables   []pascalr.TableStat `json:"tables"`
}

type sessionMetrics struct {
	Active   int    `json:"active"`
	Peak     int    `json:"peak"`
	Accepted uint64 `json:"accepted"`
	Rejected uint64 `json:"rejected"`
	Killed   uint64 `json:"killed"`
	Max      int    `json:"max"`
}

// startMonitor binds the HTTP monitoring listener and serves /metrics
// (Prometheus exposition), /metrics.json (the structured snapshot),
// /processlist, and /debug/pprof until Shutdown closes it.
func (s *Server) startMonitor() error {
	ln, err := net.Listen("tcp", s.cfg.MonitorAddr)
	if err != nil {
		return err
	}
	s.httpLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", handlePrometheus)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/processlist", s.handleProcessList)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return nil
}

// handlePrometheus renders the process-wide metrics registry in the
// Prometheus text exposition format. Every value is read through the
// registry's atomic snapshot, so scraping during a write-heavy workload
// sees no torn values.
func handlePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w)
}

// handleMetricsJSON snapshots through the same paths the binary
// protocol uses — Database.Stats merges the counter sinks under the
// engine's lock, TableStats reads the relations' published snapshots —
// so a scrape concurrent with a write-heavy workload observes a
// consistent document.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	active, peak := len(s.sessions), s.peak
	s.mu.Unlock()
	payload := metricsPayload{
		Sessions: sessionMetrics{
			Active:   active,
			Peak:     peak,
			Accepted: s.accepted.Load(),
			Rejected: s.rejected.Load(),
			Killed:   s.killed.Load(),
			Max:      s.cfg.MaxSessions,
		},
		Counters: s.db.Stats(),
		Tables:   s.db.TableStats(),
	}
	writeJSON(w, payload)
}

func (s *Server) handleProcessList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.processList())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
