package engine

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

func relKey(rel *relation.Relation) string {
	var keys []string
	for _, tup := range rel.Tuples() {
		keys = append(keys, value.EncodeKey(tup))
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// TestPlanReuseAcrossMutations proves a compiled plan stays correct as
// the database changes underneath it: plain inserts (statistics drift),
// emptying a relation (the Lemma 1 fold changes, forcing template
// recompilation), and refilling it (the fold changes back). After every
// mutation the reused plan must agree with a fresh baseline evaluation.
func TestPlanReuseAcrossMutations(t *testing.T) {
	ctx := context.Background()
	db := tinyUniversity(t)
	checked, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New(db, nil).Compile(checked, info, Options{Strategies: AllStrategies})
	if err != nil {
		t.Fatal(err)
	}

	verify := func(step string) {
		t.Helper()
		want, err := baseline.Eval(checked, info, db)
		if err != nil {
			t.Fatalf("%s: baseline: %v", step, err)
		}
		got, err := plan.Eval(ctx)
		if err != nil {
			t.Fatalf("%s: plan: %v", step, err)
		}
		if relKey(got) != relKey(want) {
			t.Fatalf("%s: reused plan disagrees with baseline: got %d rows, want %d",
				step, got.Len(), want.Len())
		}
	}

	verify("initial")
	papers := db.MustRelation("papers")
	saved := papers.Tuples()

	if _, err := papers.Insert([]value.Value{value.Int(4), value.Int(1977), value.String_("t3")}); err != nil {
		t.Fatal(err)
	}
	verify("after insert")

	if err := papers.Assign(nil); err != nil {
		t.Fatal(err)
	}
	verify("after emptying papers")

	if err := papers.Assign(saved); err != nil {
		t.Fatal(err)
	}
	verify("after refilling papers")
}

// TestPlanReuseSkipsRecompilation checks the version gate: executions
// without intervening mutations must not re-run the empty-range fold,
// and content mutations that leave emptiness unchanged must not swap
// the template.
func TestPlanReuseSkipsRecompilation(t *testing.T) {
	ctx := context.Background()
	db := tinyUniversity(t)
	checked, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New(db, nil).Compile(checked, info, Options{Strategies: AllStrategies})
	if err != nil {
		t.Fatal(err)
	}
	tmpl := plan.tmpl
	if _, err := plan.Eval(ctx); err != nil {
		t.Fatal(err)
	}
	if plan.tmpl != tmpl {
		t.Fatal("template replaced without any mutation")
	}
	if _, err := db.MustRelation("papers").Insert([]value.Value{value.Int(4), value.Int(1979), value.String_("t3")}); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Eval(ctx); err != nil {
		t.Fatal(err)
	}
	if plan.tmpl != tmpl {
		t.Fatal("template recompiled although the empty-range fold was unchanged")
	}
}

// TestFoldRecompileRefreshesAutoStats checks that a fold-driven
// recompile refreshes self-derived statistics. A relation the fold
// eliminated while empty is absent from relMuts, so when it gains rows
// only the fold key notices the change — the recompiled template must
// read the relation's current statistics, not the compile-time snapshot
// (which the restamped relMuts would otherwise tag as fresh forever).
func TestFoldRecompileRefreshesAutoStats(t *testing.T) {
	ctx := context.Background()
	db := tinyUniversity(t)
	papers := db.MustRelation("papers")
	saved := papers.Tuples()
	if err := papers.Assign(nil); err != nil {
		t.Fatal(err)
	}
	checked, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New(db, nil).Compile(checked, info, Options{Strategies: AllStrategies, CostBased: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := papers.Assign(saved); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Eval(ctx); err != nil {
		t.Fatal(err)
	}
	plan.mu.Lock()
	card := plan.opts.Estimator.Card("papers")
	plan.mu.Unlock()
	if card != float64(len(saved)) {
		t.Fatalf("recompiled plan's estimator sees %v papers rows, want %d", card, len(saved))
	}
}

// countdownCtx is a context whose Err starts reporting cancellation
// after a fixed number of checks — a deterministic stand-in for a
// context cancelled mid-evaluation.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestEvalCancellation drives the sample query with contexts that
// cancel at every successive checkpoint — before entry, during
// collection, during combination, during construction — and requires
// ctx.Err() (not a wrapped or different error) in each case, with no
// goroutines left behind.
func TestEvalCancellation(t *testing.T) {
	db := tinyUniversity(t)
	checked, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(db, nil)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Eval(cancelled, checked, info, Options{Strategies: AllStrategies}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}

	before := runtime.NumGoroutine()
	sawSuccess := false
	for n := int64(0); n < 200; n++ {
		ctx := newCountdownCtx(n)
		res, err := eng.Eval(ctx, checked, info, Options{Strategies: AllStrategies})
		if err == nil {
			// The budget outlasted the evaluation: from here on every
			// larger budget succeeds too.
			sawSuccess = true
			if res == nil {
				t.Fatalf("countdown %d: nil result without error", n)
			}
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("countdown %d: got %v, want context.Canceled", n, err)
		}
	}
	if !sawSuccess {
		t.Fatal("evaluation never completed; countdown budget too small to cover all checkpoints")
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked across cancelled evaluations: %d -> %d", before, after)
	}
}

// TestCursorCancelMidStream cancels between Next calls: the cursor must
// stop yielding and surface ctx.Err() from Err.
func TestCursorCancelMidStream(t *testing.T) {
	db := tinyUniversity(t)
	checked, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New(db, nil).Compile(checked, info, Options{Strategies: AllStrategies})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cur, err := plan.Rows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.Next() {
		t.Fatalf("first Next failed: %v", cur.Err())
	}
	cancel()
	if cur.Next() {
		t.Fatal("Next succeeded after cancellation")
	}
	if !errors.Is(cur.Err(), context.Canceled) {
		t.Fatalf("cursor error: got %v, want context.Canceled", cur.Err())
	}
}

// TestCursorStreamsDistinctTuples checks the cursor's on-the-fly
// deduplication: the yielded stream must equal the materialized result
// tuple for tuple.
func TestCursorStreamsDistinctTuples(t *testing.T) {
	ctx := context.Background()
	db := tinyUniversity(t)
	// Projecting only the level of matching courses collapses many
	// combination rows onto few result tuples.
	sel := &calculus.Selection{
		Proj: []calculus.Field{{Var: "c", Col: "clevel"}},
		Free: []calculus.Decl{{Var: "c", Range: &calculus.RangeExpr{Rel: "courses"}}},
		Pred: &calculus.Cmp{
			L:  calculus.Field{Var: "c", Col: "cnr"},
			Op: value.OpGe,
			R:  calculus.Const{Val: value.Int(1)},
		},
	}
	checked, info, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New(db, nil).Compile(checked, info, Options{Strategies: AllStrategies})
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := plan.Rows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []string
	for cur.Next() {
		got = append(got, value.EncodeKey(cur.Row()))
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, k := range got {
		if seen[k] {
			t.Fatalf("cursor yielded duplicate tuple %q", k)
		}
		seen[k] = true
	}
	if len(got) != want.Len() {
		t.Fatalf("cursor yielded %d tuples, materialized result has %d", len(got), want.Len())
	}
}
