package engine

import (
	"context"
	"sort"
	"sync"

	"pascalr/internal/calculus"
	"pascalr/internal/colbatch"
	"pascalr/internal/optimizer"
	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"

	"fmt"
)

// The vectorized collection path. A scan job whose tasks all compile to
// batch form materializes columnar batches (internal/colbatch) instead
// of dispatching tuple-at-a-time: predicates run as bulk operations
// over whole columns, producing selection bitmaps combined with bitwise
// AND/OR, and only surviving rows reach the per-row structure builders.
//
// The counter discipline is the same one the parallel scans follow:
// every bulk operation counts exactly what its tuple-at-a-time
// counterpart would have, in the same order — a batched Cmp over a
// selection of k rows counts k comparisons, a chain of predicates
// evaluates (and counts) predicate j only over the rows predicates
// 0..j-1 kept, and row-only predicates (derived strategy-4 atoms) run
// against reconstructed rows exactly on the selected positions. Batch
// runs are therefore bit-identical — results AND counter fingerprints —
// to ExecTuple runs, which enginetest asserts differentially.

// batchSize is the row capacity of one columnar batch. A variable, not
// a constant, so tests shrink it to stress batch-boundary and
// non-multiple-of-64 edge cases.
var batchSize = 1024

// batchPred evaluates one predicate in bulk over a batch, clearing the
// selection bits of rows that fail. run must count into st exactly what
// the corresponding rowPred chain would for the selected rows, and must
// not keep mutable state across calls — compiled predicates are shared
// by concurrent shard tasks. cols lists the column indexes run reads
// (all marks whole-row access instead); the scan materializes only the
// union of its tasks' footprints into the batch — the projection
// pushdown of the vectorized path.
type batchPred struct {
	run  func(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error
	cols []int
	all  bool
}

// unionPredCols merges the column footprints of a predicate chain;
// all=true swallows everything (some predicate reads whole rows).
func unionPredCols(chains ...[]batchPred) ([]int, bool) {
	seen := map[int]bool{}
	cols := []int{}
	for _, preds := range chains {
		for _, p := range preds {
			if p.all {
				return nil, true
			}
			for _, c := range p.cols {
				if !seen[c] {
					seen[c] = true
					cols = append(cols, c)
				}
			}
		}
	}
	return cols, false
}

// evalBatchPreds applies a predicate chain to sel: predicate j sees
// only the rows predicates 0..j-1 kept, mirroring evalPreds'
// short-circuit counting.
func evalBatchPreds(preds []batchPred, b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error {
	for _, p := range preds {
		if sel.Empty() {
			return nil // nothing left to evaluate (or count) — as per tuple short-circuit
		}
		if err := p.run(b, sel, st); err != nil {
			return err
		}
	}
	return nil
}

// liftRowPred degrades a row predicate to batch form: the predicate
// runs against reconstructed rows, exactly on the selected positions in
// ascending order, so its counting is untouched. This is the seam
// where batches fall back to tuple-at-a-time evaluation (derived
// strategy-4 atoms and anything else without a bulk form).
func liftRowPred(pr rowPred) batchPred {
	return batchPred{all: true, run: func(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error {
		row := make([]value.Value, b.NumCols())
		return sel.Filter(func(i int) (bool, error) {
			b.Row(i, row)
			return pr(row, st)
		})
	}}
}

// batchConstPred compiles "col[ci] op rhs" into a bulk predicate.
// Int-backed columns run the unboxed FilterOrdBits kernel over the
// batch's raw ordinal vector: the column's kind is known from the
// schema, so the constant is type-checked here, at compile time, and
// no per-row kind dispatch remains. A mismatched constant fails the
// batch compile, degrading the job to the tuple path — which surfaces
// the identical runtime comparison error (or none at all, if
// evaluation never reaches the term; erroring eagerly here would
// change observable behavior). String columns keep the boxed
// FilterBits path.
func batchConstPred(ci int, op value.CmpOp, rhs value.Value, sch *schema.RelSchema) (batchPred, error) {
	k := sch.Cols[ci].Type.ValueKind()
	if !value.OrdKind(k) {
		return batchPred{cols: []int{ci}, run: func(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error {
			st.CountComparisons(sel.Count())
			return op.FilterBits(b.Vals(ci), rhs, sel.Words())
		}}, nil
	}
	if rhs.Kind() != k {
		return batchPred{}, fmt.Errorf("engine: cannot compare %s column %s with %s constant", k, sch.Cols[ci].Name, rhs.Kind())
	}
	if k == value.KindEnum && rhs.EnumType() != sch.Cols[ci].Type.Name {
		return batchPred{}, fmt.Errorf("engine: cannot compare enum %s column %s with enum %s constant", sch.Cols[ci].Type.Name, sch.Cols[ci].Name, rhs.EnumType())
	}
	r := rhs.Ord()
	return batchPred{cols: []int{ci}, run: func(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error {
		st.CountComparisons(sel.Count())
		op.FilterOrdBits(b.Ords(ci), r, sel.Words())
		return nil
	}}, nil
}

// compileBatchMonadic compiles a monadic join term over v into a bulk
// predicate. Field-versus-constant terms — the common case — go
// through batchConstPred, one (compile-time) kind dispatch per column
// instead of per row; field-versus-field terms run a per-selected-row
// loop, unboxed when both columns are int-backed.
func compileBatchMonadic(c *calculus.Cmp, v string, sch *schema.RelSchema) (batchPred, error) {
	colIdx := func(f calculus.Field) (int, error) {
		if f.Var != v {
			return 0, fmt.Errorf("engine: operand %s is not over variable %s", f, v)
		}
		ci, ok := sch.ColIndex(f.Col)
		if !ok {
			return 0, fmt.Errorf("engine: relation %s has no component %s", sch.Name, f.Col)
		}
		return ci, nil
	}
	op := c.Op
	lc, lConst := c.L.(calculus.Const)
	lf, lField := c.L.(calculus.Field)
	rc, rConst := c.R.(calculus.Const)
	rf, rField := c.R.(calculus.Field)
	switch {
	case lField && rConst:
		ci, err := colIdx(lf)
		if err != nil {
			return batchPred{}, err
		}
		return batchConstPred(ci, op, rc.Val, sch)
	case lConst && rField:
		ci, err := colIdx(rf)
		if err != nil {
			return batchPred{}, err
		}
		// const op col[i]  ⇔  col[i] flip(op) const
		return batchConstPred(ci, op.Flip(), lc.Val, sch)
	case lField && rField:
		li, err := colIdx(lf)
		if err != nil {
			return batchPred{}, err
		}
		ri, err := colIdx(rf)
		if err != nil {
			return batchPred{}, err
		}
		lk, rk := sch.Cols[li].Type.ValueKind(), sch.Cols[ri].Type.ValueKind()
		if value.OrdKind(lk) || value.OrdKind(rk) {
			// Same compile-time discipline as batchConstPred: a kind or
			// enum-type mismatch degrades to the tuple path instead of
			// erroring eagerly.
			if lk != rk {
				return batchPred{}, fmt.Errorf("engine: cannot compare %s column %s with %s column %s", lk, sch.Cols[li].Name, rk, sch.Cols[ri].Name)
			}
			if lk == value.KindEnum && sch.Cols[li].Type.Name != sch.Cols[ri].Type.Name {
				return batchPred{}, fmt.Errorf("engine: cannot compare enum %s column %s with enum %s column %s", sch.Cols[li].Type.Name, sch.Cols[li].Name, sch.Cols[ri].Type.Name, sch.Cols[ri].Name)
			}
			return batchPred{cols: []int{li, ri}, run: func(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error {
				st.CountComparisons(sel.Count())
				lcol, rcol := b.Ords(li), b.Ords(ri)
				return sel.Filter(func(i int) (bool, error) {
					return op.HoldsOrd(lcol[i], rcol[i]), nil
				})
			}}, nil
		}
		return batchPred{cols: []int{li, ri}, run: func(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error {
			st.CountComparisons(sel.Count())
			lcol, rcol := b.Vals(li), b.Vals(ri)
			return sel.Filter(func(i int) (bool, error) {
				return op.Apply(lcol[i], rcol[i])
			})
		}}, nil
	case lConst && rConst:
		lv, rv := lc.Val, rc.Val
		return batchPred{run: func(_ *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error {
			n := sel.Count()
			if n == 0 {
				return nil
			}
			st.CountComparisons(n)
			ok, err := op.Apply(lv, rv)
			if err != nil {
				return err
			}
			if !ok {
				sel.ClearAll(sel.Len())
			}
			return nil
		}}, nil
	default:
		return batchPred{}, fmt.Errorf("engine: unresolved operand in %s", c)
	}
}

// compileBatchFilter compiles a quantifier-free filter formula into a
// bulk predicate with the same evaluation (and counting) order as
// compileFilter: And chains filter sequentially, Or evaluates disjunct
// k only over rows no earlier disjunct admitted, Not evaluates its
// operand over every row reaching it.
func compileBatchFilter(f calculus.Formula, fv string, sch *schema.RelSchema) (batchPred, error) {
	switch g := f.(type) {
	case nil:
		return batchPred{}, fmt.Errorf("engine: nil filter formula")
	case *calculus.Lit:
		val := g.Val
		return batchPred{run: func(_ *colbatch.Batch, sel *colbatch.Bitmap, _ *stats.Counters) error {
			if !val {
				sel.ClearAll(sel.Len())
			}
			return nil
		}}, nil
	case *calculus.Cmp:
		return compileBatchMonadic(g, fv, sch)
	case *calculus.Not:
		sub, err := compileBatchFilter(g.F, fv, sch)
		if err != nil {
			return batchPred{}, err
		}
		return batchPred{cols: sub.cols, all: sub.all, run: func(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error {
			var tmp colbatch.Bitmap
			tmp.CopyFrom(sel)
			if err := sub.run(b, &tmp, st); err != nil {
				return err
			}
			sel.AndNot(&tmp)
			return nil
		}}, nil
	case *calculus.And:
		subs, err := compileBatchFilters(g.Fs, fv, sch)
		if err != nil {
			return batchPred{}, err
		}
		cols, all := unionPredCols(subs)
		return batchPred{cols: cols, all: all, run: func(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error {
			return evalBatchPreds(subs, b, sel, st)
		}}, nil
	case *calculus.Or:
		subs, err := compileBatchFilters(g.Fs, fv, sch)
		if err != nil {
			return batchPred{}, err
		}
		cols, all := unionPredCols(subs)
		return batchPred{cols: cols, all: all, run: func(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) error {
			var acc, remaining, m colbatch.Bitmap
			acc.ClearAll(sel.Len())
			remaining.CopyFrom(sel)
			for _, s := range subs {
				if remaining.Empty() {
					break
				}
				m.CopyFrom(&remaining)
				if err := s.run(b, &m, st); err != nil {
					return err
				}
				acc.Or(&m)
				remaining.AndNot(&m)
			}
			sel.CopyFrom(&acc)
			return nil
		}}, nil
	default:
		return batchPred{}, fmt.Errorf("engine: quantifier inside range filter")
	}
}

func compileBatchFilters(fs []calculus.Formula, fv string, sch *schema.RelSchema) ([]batchPred, error) {
	out := make([]batchPred, len(fs))
	for i, f := range fs {
		p, err := compileBatchFilter(f, fv, sch)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// rangeBatchPredsFor compiles v's range filter to batch form; ok=false
// marks the variable's tasks tuple-only (the row compile surfaces any
// real error — the batch compile failing alone just degrades the job).
func (p *plan) rangeBatchPredsFor(v string) ([]batchPred, bool) {
	node := p.vars[v]
	if !node.rng.Extended() {
		return nil, true
	}
	bp, err := compileBatchFilter(node.rng.Filter, node.rng.FilterVar, node.sch)
	if err != nil {
		return nil, false
	}
	return []batchPred{bp}, true
}

// compileBatchAtoms compiles monadic atoms over v to batch form: plain
// comparisons in bulk, derived strategy-4 atoms lifted row-wise.
func (p *plan) compileBatchAtoms(v string, atoms []optimizer.Atom) ([]batchPred, bool) {
	node := p.vars[v]
	out := make([]batchPred, 0, len(atoms))
	for _, a := range atoms {
		if a.Cmp != nil {
			bp, err := compileBatchMonadic(a.Cmp, v, node.sch)
			if err != nil {
				return nil, false
			}
			out = append(out, bp)
			continue
		}
		rt, ok := p.specRTs[a.Semi.Spec]
		if !ok {
			return nil, false
		}
		pr, err := compileSemiAtom(a.Semi, node.sch, rt)
		if err != nil {
			return nil, false
		}
		out = append(out, liftRowPred(pr))
	}
	return out, true
}

// batchTask is a scanTask that can process a whole columnar batch. sel
// arrives all-ones over the batch's rows and is the task's to mutate;
// the returned count is the rows surviving the task's own predicate
// chain (feeding the selection-density metrics).
type batchTask interface {
	scanTask
	batchable() bool
	// batchCols reports the column indexes processBatch reads, or
	// all=true for whole-row access; the scan materializes only the
	// union across its tasks.
	batchCols() (cols []int, all bool)
	processBatch(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) (int, error)
}

func (t *rangeTask) batchable() bool { return t.bOK }

func (t *rangeTask) batchCols() ([]int, bool) { return unionPredCols(t.bRange) }

func (t *rangeTask) processBatch(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) (int, error) {
	if err := evalBatchPreds(t.bRange, b, sel, st); err != nil {
		return 0, err
	}
	n := 0
	sel.Do(func(i int) bool {
		t.refs = append(t.refs, b.Ref(i))
		n++
		return true
	})
	return n, nil
}

func (t *slTask) batchable() bool { return t.bOK && t.spec.bOK }

func (t *slTask) batchCols() ([]int, bool) { return unionPredCols(t.bRange, t.spec.bPreds) }

func (t *slTask) processBatch(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) (int, error) {
	if err := evalBatchPreds(t.bRange, b, sel, st); err != nil {
		return 0, err
	}
	if err := evalBatchPreds(t.spec.bPreds, b, sel, st); err != nil {
		return 0, err
	}
	n := 0
	sel.Do(func(i int) bool {
		t.out.Add(b.Ref(i))
		n++
		return true
	})
	return n, nil
}

func (t *ixTask) batchable() bool { return t.bOK }

func (t *ixTask) batchCols() ([]int, bool) {
	cols, all := unionPredCols(t.bRange)
	if all {
		return nil, true
	}
	return append(cols, t.spec.colIdx), false
}

func (t *ixTask) processBatch(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) (int, error) {
	if err := evalBatchPreds(t.bRange, b, sel, st); err != nil {
		return 0, err
	}
	n := 0
	ci := t.spec.colIdx
	sel.Do(func(i int) bool {
		t.out.Add(b.ColVal(ci, i), b.Ref(i))
		n++
		return true
	})
	return n, nil
}

func (t *groupTask) batchable() bool { return t.bOK && t.grp.bOK }

func (t *groupTask) batchCols() ([]int, bool) {
	cols, all := unionPredCols(t.bRange, t.grp.bPreds)
	if all {
		return nil, true
	}
	for _, pr := range t.grp.probes {
		cols = append(cols, pr.probeCol)
	}
	return cols, false
}

func (t *groupTask) processBatch(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) (int, error) {
	if err := evalBatchPreds(t.bRange, b, sel, st); err != nil {
		return 0, err
	}
	if err := evalBatchPreds(t.grp.bPreds, b, sel, st); err != nil {
		return 0, err
	}
	if t.matchBuf == nil {
		t.matchBuf = make([][]value.Value, len(t.grp.probes))
	}
	n := 0
	sel.Do(func(i int) bool {
		n++
		for pi := range t.grp.probes {
			pr := &t.grp.probes[pi]
			t.matchBuf[pi] = t.matchBuf[pi][:0]
			pr.index.probe(t.p, st, pr.op, b.ColVal(pr.probeCol, i), func(r value.Value) {
				t.matchBuf[pi] = append(t.matchBuf[pi], r)
			})
			if t.grp.mutual && len(t.matchBuf[pi]) == 0 {
				return true // another probe failed: suppress all pairs (4.2)
			}
		}
		for pi := range t.grp.probes {
			for _, r := range t.matchBuf[pi] {
				t.outs[pi].Add(b.Ref(i), r)
			}
		}
		return true
	})
	return n, nil
}

func (t *specTask) batchable() bool { return t.bOK }

func (t *specTask) batchCols() ([]int, bool) { return nil, true } // builds whole rows

func (t *specTask) processBatch(b *colbatch.Batch, sel *colbatch.Bitmap, st *stats.Counters) (int, error) {
	if err := evalBatchPreds(t.bRange, b, sel, st); err != nil {
		return 0, err
	}
	var mon colbatch.Bitmap
	mon.CopyFrom(sel)
	if err := evalBatchPreds(t.bMon, b, &mon, st); err != nil {
		return 0, err
	}
	n := 0
	row := make([]value.Value, b.NumCols())
	sel.Do(func(i int) bool {
		b.Row(i, row)
		t.rt.add(row, mon.Has(i), t.dyCols)
		n++
		return true
	})
	return n, nil
}

// finalizeBatchJobs decides, per scan job, whether it runs the batched
// path: every task must compile to batch form. errTask (a deferred
// planning error) never does, so failing plans surface their error on
// the tuple path unchanged. For batched jobs it also computes the
// column mask — the union of the tasks' footprints, sorted for a
// deterministic materialization order — so the scan copies only the
// columns some task actually reads (nil = whole rows).
func (p *plan) finalizeBatchJobs() {
	if p.exec == ExecTuple {
		return
	}
	for _, job := range p.jobs {
		job.batch = len(job.tasks) > 0
		seen := map[int]bool{}
		cols, all := []int{}, false
		for _, t := range job.tasks {
			bt, ok := t.(batchTask)
			if !ok || !bt.batchable() {
				job.batch = false
				break
			}
			tc, ta := bt.batchCols()
			if ta {
				all = true
				continue
			}
			for _, c := range tc {
				if !seen[c] {
					seen[c] = true
					cols = append(cols, c)
				}
			}
		}
		if !job.batch || all {
			continue
		}
		sort.Ints(cols)
		job.batchCols = cols
	}
}

// batchPool recycles columnar batches across scans and executions: the
// buffers are the dominant per-execution allocation of the vectorized
// path (cols × batchSize interface values), and without reuse the GC
// pressure erases the bulk-evaluation win on repeated queries. A batch
// whose shape no longer matches (different column count, or a test
// shrank batchSize) is simply dropped and a fresh one allocated.
var batchPool sync.Pool

func getBatch(ncols int) *colbatch.Batch {
	if v := batchPool.Get(); v != nil {
		b := v.(*colbatch.Batch)
		if b.NumCols() == ncols && b.Cap() == batchSize {
			return b
		}
	}
	return colbatch.New(ncols, batchSize)
}

func putBatch(b *colbatch.Batch) {
	b.Reset()
	batchPool.Put(b)
}

// scanSlotRangeBatch is the columnar drive of one slot range: fill a
// batch, run every task's bulk predicate chain over it, flush, repeat.
// Cancellation is checked per batch — batchSize (1024) matches the old
// per-tuple check interval, and the final partial batch checks too, so
// cancellation latency is the same or tighter than the tuple path's.
func (p *plan) scanSlotRangeBatch(ctx context.Context, job *scanJob, tasks []scanTask, st *stats.Counters, lo, hi int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b := getBatch(len(job.rel.Schema().Cols))
	defer putBatch(b)
	cols := job.batchCols
	var sel colbatch.Bitmap
	flush := func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		rows := b.Len()
		kept := int64(0)
		for _, t := range tasks {
			sel.SetAll(rows)
			n, err := t.(batchTask).processBatch(b, &sel, st)
			if err != nil {
				return err
			}
			kept += int64(n)
		}
		job.batches.Add(1)
		mBatchBatches.Inc()
		mBatchRows.Add(int64(rows))
		mBatchFilterRows.Add(int64(rows) * int64(len(tasks)))
		mBatchSelectedRows.Add(kept)
		hBatchSizeRows.Observe(int64(rows))
		return nil
	}
	return job.rel.ScanBatches(st, lo, hi, b, cols, flush)
}
