package engine

import (
	"context"
	"fmt"

	"pascalr/internal/algebra"
	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/value"
)

// Cursor streams the construction phase: the combination result (a
// reference relation over the free variables) is materialized, but the
// dereference-and-project step runs lazily, one result tuple per Next.
// Duplicate projections are suppressed on the fly, preserving the set
// semantics of the materializing path — the tuples yielded are exactly
// the tuples Eval would return, in the same order.
type Cursor struct {
	ctx       context.Context
	db        *relation.DB
	result    *relation.Relation // accumulates yielded tuples; dedup + schema
	rows      [][]value.Value    // combination-phase reference tuples
	cols      []int              // projection: combination column per output component
	fieldCols []int              // projection: relation component per output component
	i         int
	buf       []value.Value // scratch projection buffer, reused per row
	cur       []value.Value
	err       error
	closed    bool
}

// newCursor prepares the construction projection. A nil refs means the
// combination phase proved the result empty.
func newCursor(ctx context.Context, db *relation.DB, sel *calculus.Selection, result *relation.Relation, refs *algebra.RefRel) (*Cursor, error) {
	c := &Cursor{ctx: ctx, db: db, result: result}
	if refs == nil || refs.Len() == 0 {
		return c, nil
	}
	varIdx := map[string]int{}
	for i, v := range refs.Vars() {
		varIdx[v] = i
	}
	c.cols = make([]int, len(sel.Proj))
	c.fieldCols = make([]int, len(sel.Proj))
	for i, pr := range sel.Proj {
		vi, ok := varIdx[pr.Var]
		if !ok {
			return nil, fmt.Errorf("engine: projected variable %s missing from combination result", pr.Var)
		}
		c.cols[i] = vi
		rel, ok := db.Relation(rangeRelOf(sel, pr.Var))
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation for variable %s", pr.Var)
		}
		ci, ok := rel.Schema().ColIndex(pr.Col)
		if !ok {
			return nil, fmt.Errorf("engine: relation %s has no component %s", rel.Name(), pr.Col)
		}
		c.fieldCols[i] = ci
	}
	c.rows = refs.Rows()
	return c, nil
}

func rangeRelOf(sel *calculus.Selection, v string) string {
	for _, d := range sel.Free {
		if d.Var == v {
			return d.Range.Rel
		}
	}
	return ""
}

// Next advances to the next distinct result tuple. It returns false at
// the end of the result, on error, or once the cursor's context is
// cancelled; consult Err to distinguish. Once Next has returned false
// the current row is cleared, so a late Row (or a Scan through the
// public wrapper) cannot silently re-read the final tuple.
func (c *Cursor) Next() bool {
	if c.closed || c.err != nil {
		c.cur = nil
		return false
	}
	if c.buf == nil {
		c.buf = make([]value.Value, len(c.cols))
	}
	for c.i < len(c.rows) {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			c.cur = nil
			return false
		}
		row := c.rows[c.i]
		c.i++
		// Dereference the row's references under the database read
		// lock: construction is race-free against concurrent writers,
		// and an element deleted since the combination phase surfaces
		// as a stale-reference error (per-slot generations), not as a
		// torn read.
		c.db.RLock()
		for j := range c.cols {
			elem, err := c.db.Deref(row[c.cols[j]])
			if err != nil {
				c.db.RUnlock()
				c.err = err
				c.cur = nil
				return false
			}
			c.buf[j] = elem[c.fieldCols[j]]
		}
		c.db.RUnlock()
		// Insert copies the buffer; only genuinely new tuples are
		// yielded, and the yielded slice is the result relation's stored
		// copy, so duplicate rows cost no allocation at all.
		before := c.result.Len()
		ref, err := c.result.Insert(c.buf)
		if err != nil {
			c.err = err
			c.cur = nil
			return false
		}
		if c.result.Len() > before {
			stored, err := c.result.Deref(ref)
			if err != nil {
				c.err = err
				c.cur = nil
				return false
			}
			c.cur = stored
			return true
		}
	}
	c.cur = nil
	return false
}

// Row returns the current tuple. It is valid until the next Next call
// and must not be modified.
func (c *Cursor) Row() []value.Value { return c.cur }

// Err returns the error that terminated iteration, if any — including
// ctx.Err() when the cursor's context was cancelled mid-stream.
func (c *Cursor) Err() error { return c.err }

// Close releases the buffered combination result. Further Next calls
// return false. Close is idempotent and never fails; it exists for the
// database/sql-style defer rows.Close() idiom.
func (c *Cursor) Close() error {
	c.closed = true
	c.rows = nil
	c.cur = nil
	return nil
}

// Schema returns the schema of the result relation the cursor produces.
func (c *Cursor) Schema() *schema.RelSchema { return c.result.Schema() }
