package engine

import "pascalr/internal/obs"

// Engine-layer metrics. Registered once at package init; the hot paths
// touch only the returned atomics. Span tracing (internal/obs) rides the
// context instead — see collectWithAdaptation and rowsWithPlan — and
// never writes into stats.Counters, so counter fingerprints are
// bit-identical with tracing on or off.
var (
	mParallelShards = obs.GetCounter("pascal_engine_parallel_shards_total",
		"Collection-phase scan shards fanned out to the scheduler worker pool")
	mQueries = obs.GetCounter("pascal_engine_queries_total",
		"Query executions started (collection + combination phases)")
	mQueryLatency = obs.GetHistogram("pascal_engine_query_seconds",
		"Latency of the eager collection + combination phases per execution")
)
