package engine

import "pascalr/internal/obs"

// Engine-layer metrics. Registered once at package init; the hot paths
// touch only the returned atomics. Span tracing (internal/obs) rides the
// context instead — see collectWithAdaptation and rowsWithPlan — and
// never writes into stats.Counters, so counter fingerprints are
// bit-identical with tracing on or off.
var (
	mParallelShards = obs.GetCounter("pascal_engine_parallel_shards_total",
		"Collection-phase scan shards fanned out to the scheduler worker pool")
	mQueries = obs.GetCounter("pascal_engine_queries_total",
		"Query executions started (collection + combination phases)")
	mQueryLatency = obs.GetHistogram("pascal_engine_query_seconds",
		"Latency of the eager collection + combination phases per execution")

	// Vectorized-path metrics: batches produced, rows materialized into
	// them, rows entering bulk predicate evaluation (rows × tasks, the
	// selection-density denominator), rows surviving it, and the
	// rows-per-batch distribution.
	mBatchBatches = obs.GetCounter("pascal_engine_batch_batches_total",
		"Columnar batches produced by vectorized collection-phase scans")
	mBatchRows = obs.GetCounter("pascal_engine_batch_rows_total",
		"Rows materialized into columnar batches")
	mBatchFilterRows = obs.GetCounter("pascal_engine_batch_filter_rows_total",
		"Rows entering bulk selection-vector filtering (batch rows x tasks)")
	mBatchSelectedRows = obs.GetCounter("pascal_engine_batch_selected_rows_total",
		"Rows surviving bulk selection-vector filtering across all tasks")
	hBatchSizeRows = obs.GetValueHistogram("pascal_engine_batch_size_rows",
		"Rows per columnar batch produced by vectorized scans",
		[]float64{1, 4, 16, 64, 256, 1024, 4096})
)
