package engine

import (
	"context"
	"math/rand"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/stats"
	"pascalr/internal/workload"
)

// TestPermanentIndexSkipsScan reproduces the paper's section 3.2 note:
// with a permanent index, the collection phase's index-building step is
// omitted — and a scan that existed only for that build disappears.
func TestPermanentIndexSkipsScan(t *testing.T) {
	join := &calculus.Selection{
		Proj: []calculus.Field{{Var: "c", Col: "ctitle"}, {Var: "t", Col: "tenr"}, {Var: "t", Col: "tday"}},
		Free: []calculus.Decl{
			{Var: "c", Range: &calculus.RangeExpr{Rel: "courses"}},
			{Var: "t", Range: &calculus.RangeExpr{Rel: "timetable"}},
		},
		Pred: &calculus.Cmp{
			L: calculus.Field{Var: "c", Col: "cnr"}, Op: 0, /* = */
			R: calculus.Field{Var: "t", Col: "tcnr"},
		},
	}

	run := func(withIndex bool) (*stats.Counters, int) {
		db := workload.MustUniversity(workload.DefaultConfig(20))
		if withIndex {
			if _, err := db.MustRelation("courses").CreateIndex("cnr"); err != nil {
				t.Fatal(err)
			}
		}
		checked, info, err := calculus.Check(join, db.Catalog())
		if err != nil {
			t.Fatal(err)
		}
		st := &stats.Counters{}
		eng := New(db, st)
		res, err := eng.Eval(context.Background(), checked, info, Options{Strategies: S1})
		if err != nil {
			t.Fatal(err)
		}
		return st, res.Len()
	}

	stNo, rowsNo := run(false)
	stYes, rowsYes := run(true)
	if rowsNo != rowsYes {
		t.Fatalf("result changed with permanent index: %d vs %d", rowsNo, rowsYes)
	}
	if stNo.BaseScans["courses"] != 1 {
		t.Errorf("without index, courses scanned %d times", stNo.BaseScans["courses"])
	}
	if stYes.BaseScans["courses"] != 0 {
		t.Errorf("with permanent index, courses still scanned %d times", stYes.BaseScans["courses"])
	}
	if stYes.BaseScans["timetable"] != 1 {
		t.Errorf("probing relation scanned %d times", stYes.BaseScans["timetable"])
	}
}

// TestPermanentIndexWithSampleQuery runs the full paper query with
// permanent indexes on every join column under every strategy level.
func TestPermanentIndexWithSampleQuery(t *testing.T) {
	for _, strat := range ladder {
		db := tinyUniversity(t)
		for _, ic := range [][2]string{
			{"timetable", "tcnr"}, {"timetable", "tenr"}, {"papers", "penr"}, {"courses", "cnr"},
		} {
			if _, err := db.MustRelation(ic[0]).CreateIndex(ic[1]); err != nil {
				t.Fatal(err)
			}
		}
		res, _ := evalWith(t, db, workload.SampleSelection(), strat)
		got := names(t, res)
		if len(got) != 2 || got[0] != "cyd" || got[1] != "dan" {
			t.Errorf("%s with permanent indexes: %v", strat, got)
		}
	}
}

// TestDifferentialWithPermanentIndexes re-runs the randomized
// differential test with permanent indexes on every column of every
// relation: results must match the oracle exactly, including the
// extended-range filtering of permanent-index probes.
func TestDifferentialWithPermanentIndexes(t *testing.T) {
	subsets := []Strategy{0, S1, S3, S1 | S2, S3 | S4, S1 | S2 | S3, AllStrategies}
	seeds := int64(250)
	if testing.Short() {
		seeds = 60
	}
	for seed := int64(500); seed < 500+seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := workload.RandomDB(rng, 6)
		for i := 0; i < 3; i++ {
			rel := db.MustRelation([]string{"r0", "r1", "r2"}[i])
			for _, col := range []string{"a", "b"} {
				if _, err := rel.CreateIndex(col); err != nil {
					t.Fatal(err)
				}
			}
		}
		sel := workload.RandomSelection(rng)
		checked, info, err := calculus.Check(sel, db.Catalog())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := baseline.Eval(checked, info, db)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		wantKey := resultKey(want)
		for _, strat := range subsets {
			eng := New(db, nil)
			got, err := eng.Eval(context.Background(), checked, info, Options{Strategies: strat})
			if err != nil {
				t.Fatalf("seed %d %s: %v\nquery: %s", seed, strat, err, checked)
			}
			if resultKey(got) != wantKey {
				t.Fatalf("seed %d %s: mismatch with permanent indexes\nquery: %s\nwant %d got %d",
					seed, strat, checked, want.Len(), got.Len())
			}
		}
	}
}

// TestLazyRangeListsPreserveSemantics checks the corner the lazy range
// lists must not break: an empty base relation for a constrained free
// variable still yields an empty result even though no range list is
// materialized.
func TestLazyRangeListsPreserveSemantics(t *testing.T) {
	db := tinyUniversity(t)
	if err := db.MustRelation("timetable").Assign(nil); err != nil {
		t.Fatal(err)
	}
	sel := workload.SubexprSelection() // free c, free t; t's relation empty
	res, _ := evalWith(t, db, sel, S1|S2|S3|S4)
	if res.Len() != 0 {
		t.Errorf("join over empty relation returned %d rows", res.Len())
	}
}
