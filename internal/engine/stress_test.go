package engine

import (
	"context"
	"math/rand"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/workload"
)

func TestStressDifferential(t *testing.T) {
	subsets := []Strategy{0, S1, S2, S3, S4, S1 | S2, S1 | S3, S1 | S4, S2 | S3, S3 | S4,
		S1 | S2 | S3, S1 | S2 | S4, S1 | S3 | S4, S2 | S3 | S4, AllStrategies,
		SCNF, S3 | SCNF, S1 | S2 | S3 | SCNF, AllStrategies | SCNF}
	seeds := int64(2000)
	if testing.Short() {
		seeds = 200
	}
	for seed := int64(1000); seed < 1000+seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := workload.RandomDB(rng, 6)
		sel := workload.RandomSelection(rng)
		checked, info, err := calculus.Check(sel, db.Catalog())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := baseline.Eval(checked, info, db)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		wantKey := resultKey(want)
		for _, strat := range subsets {
			eng := New(db, nil)
			got, err := eng.Eval(context.Background(), checked, info, Options{Strategies: strat})
			if err != nil {
				t.Fatalf("seed %d %s: engine: %v\nquery: %s", seed, strat, err, checked)
			}
			if gotKey := resultKey(got); gotKey != wantKey {
				t.Fatalf("seed %d %s: result mismatch\nquery: %s\nwant %d rows, got %d rows",
					seed, strat, checked, want.Len(), got.Len())
			}
		}
	}
}
