package engine

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

// ladder lists the strategy subsets the experiments compare.
var ladder = []Strategy{0, S1, S1 | S2, S1 | S2 | S3, AllStrategies}

func tinyUniversity(t *testing.T) *relation.DB {
	t.Helper()
	db := relation.NewDB()
	if err := workload.DefineSchema(db, workload.DefaultConfig(10)); err != nil {
		t.Fatal(err)
	}
	ins := func(rel string, tuples ...[]value.Value) {
		r := db.MustRelation(rel)
		for _, tup := range tuples {
			if _, err := r.Insert(tup); err != nil {
				t.Fatalf("insert %s: %v", rel, err)
			}
		}
	}
	ins("employees",
		[]value.Value{value.Int(1), value.String_("ada"), value.Enum("statustype", workload.StatusProfessor)},
		[]value.Value{value.Int(2), value.String_("bob"), value.Enum("statustype", workload.StatusStudent)},
		[]value.Value{value.Int(3), value.String_("cyd"), value.Enum("statustype", workload.StatusProfessor)},
		[]value.Value{value.Int(4), value.String_("dan"), value.Enum("statustype", workload.StatusProfessor)},
	)
	ins("papers",
		[]value.Value{value.Int(1), value.Int(1977), value.String_("t1")},
		[]value.Value{value.Int(3), value.Int(1980), value.String_("t2")},
	)
	ins("courses",
		[]value.Value{value.Int(10), value.Enum("leveltype", workload.LevelSophomore), value.String_("c10")},
		[]value.Value{value.Int(11), value.Enum("leveltype", workload.LevelSenior), value.String_("c11")},
	)
	ins("timetable",
		[]value.Value{value.Int(1), value.Int(11), value.Enum("daytype", 0), value.Int(9000900), value.String_("R1")},
		[]value.Value{value.Int(3), value.Int(10), value.Enum("daytype", 1), value.Int(9000900), value.String_("R2")},
	)
	return db
}

func evalWith(t *testing.T, db *relation.DB, sel *calculus.Selection, strat Strategy) (*relation.Relation, *stats.Counters) {
	t.Helper()
	checked, info, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	st := &stats.Counters{}
	eng := New(db, st)
	res, err := eng.Eval(context.Background(), checked, info, Options{Strategies: strat})
	if err != nil {
		t.Fatalf("strategies %s: %v", strat, err)
	}
	return res, st
}

func names(t *testing.T, rel *relation.Relation) []string {
	t.Helper()
	var out []string
	for _, tup := range rel.Tuples() {
		out = append(out, tup[0].AsString())
	}
	sort.Strings(out)
	return out
}

func TestPaperExampleAllStrategyLevels(t *testing.T) {
	for _, strat := range ladder {
		db := tinyUniversity(t)
		res, _ := evalWith(t, db, workload.SampleSelection(), strat)
		got := names(t, res)
		if len(got) != 2 || got[0] != "cyd" || got[1] != "dan" {
			t.Errorf("%s: Example 2.1 = %v, want [cyd dan]", strat, got)
		}
	}
}

func TestEmptyPapersAdaptation(t *testing.T) {
	// With papers = [], ALL p folds to TRUE: all professors qualify —
	// the adaptation the paper demands in Example 2.2.
	for _, strat := range ladder {
		db := tinyUniversity(t)
		if err := db.MustRelation("papers").Assign(nil); err != nil {
			t.Fatal(err)
		}
		res, _ := evalWith(t, db, workload.SampleSelection(), strat)
		got := names(t, res)
		if len(got) != 3 || got[0] != "ada" || got[1] != "cyd" || got[2] != "dan" {
			t.Errorf("%s: papers=[] gives %v, want all three professors", strat, got)
		}
	}
}

func TestEmptyCoursesAdaptation(t *testing.T) {
	// With courses = [], SOME c folds to FALSE: only the ALL p branch
	// qualifies (cyd and dan).
	for _, strat := range ladder {
		db := tinyUniversity(t)
		if err := db.MustRelation("courses").Assign(nil); err != nil {
			t.Fatal(err)
		}
		res, _ := evalWith(t, db, workload.SampleSelection(), strat)
		got := names(t, res)
		if len(got) != 2 || got[0] != "cyd" || got[1] != "dan" {
			t.Errorf("%s: courses=[] gives %v, want [cyd dan]", strat, got)
		}
	}
}

func TestEmptyEmployeesGivesEmptyResult(t *testing.T) {
	for _, strat := range ladder {
		db := tinyUniversity(t)
		if err := db.MustRelation("employees").Assign(nil); err != nil {
			t.Fatal(err)
		}
		res, _ := evalWith(t, db, workload.SampleSelection(), strat)
		if res.Len() != 0 {
			t.Errorf("%s: empty free range returned %d rows", strat, res.Len())
		}
	}
}

// TestStrategy1ScanCounts reproduces the paper's section 4.1 claim: under
// strategy 1 each database relation is read no more than once, while the
// standard algorithm reads a relation once per structure built from it.
func TestStrategy1ScanCounts(t *testing.T) {
	db := tinyUniversity(t)
	_, st0 := evalWith(t, db, workload.SampleSelection(), 0)
	_, st1 := evalWith(t, tinyUniversity(t), workload.SampleSelection(), S1)

	for _, rel := range []string{"employees", "papers", "courses", "timetable"} {
		if st1.BaseScans[rel] > 1 {
			t.Errorf("S1 scans %s %d times", rel, st1.BaseScans[rel])
		}
	}
	if st0.TotalScans() <= st1.TotalScans() {
		t.Errorf("S0 total scans %d not greater than S1 %d", st0.TotalScans(), st1.TotalScans())
	}
	// The sample query touches employees with three structures (sl_prof
	// via three conjunctions shares, ij_e_t, ij_e_p): S0 must scan it
	// more than once.
	if st0.BaseScans["employees"] < 2 {
		t.Errorf("S0 scans employees only %d times", st0.BaseScans["employees"])
	}
}

// TestStrategy3RemovesConjunction reproduces Example 4.5: extraction of
// the universal variable's monadic term removes one whole conjunction.
func TestStrategy3RemovesConjunction(t *testing.T) {
	db := tinyUniversity(t)
	checked, _, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(db, nil)
	x3, err := eng.prepare(checked, Options{Strategies: S3})
	if err != nil {
		t.Fatal(err)
	}
	if len(x3.Matrix) != 2 {
		t.Errorf("S3 matrix has %d conjunctions, want 2 (Example 4.5):\n%s", len(x3.Matrix), x3)
	}
	// The employees range must now be extended with the professor test,
	// the papers range with pyear = 1977, and the courses range with the
	// level test.
	s := x3.String()
	for _, want := range []string{
		"EACH e IN [EACH e IN employees: e.estatus = statustype#3]",
		"ALL p IN [EACH p IN papers: p.pyear = 1977]",
		"SOME c IN [EACH c IN courses: c.clevel <= leveltype#1]",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("S3 form missing %q:\n%s", want, s)
		}
	}
}

// TestStrategy4Cascade reproduces Example 4.7: with extended ranges in
// place, strategy 4 eliminates all three quantifiers into a cascade of
// value lists (cset, tset, pset).
func TestStrategy4Cascade(t *testing.T) {
	db := tinyUniversity(t)
	checked, _, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(db, nil)
	x, err := eng.prepare(checked, Options{Strategies: S3 | S4})
	if err != nil {
		t.Fatal(err)
	}
	if len(x.Prefix) != 0 {
		t.Errorf("S3+S4 leaves prefix %v, want full elimination (Example 4.7):\n%s", x.Prefix, x)
	}
	if len(x.Specs) < 3 {
		t.Errorf("expected at least 3 value-list specs (cset, tset, pset), got %d", len(x.Specs))
	}
	// Without S3 the universal variable p occurs in two conjunctions, so
	// it cannot be eliminated (Example 4.6's observation).
	x4only, err := eng.prepare(checked, Options{Strategies: S4})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range x4only.Prefix {
		if q.Var == "p" {
			return // p survived, as the paper says it must
		}
	}
	t.Errorf("S4 alone eliminated ALL p although it occurs in two conjunctions:\n%s", x4only)
}

func TestExplain(t *testing.T) {
	db := tinyUniversity(t)
	checked, _, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(db, nil)
	for _, strat := range ladder {
		out, err := eng.Explain(checked, Options{Strategies: strat})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !strings.Contains(out, "collection phase") {
			t.Errorf("%s: explain missing sections:\n%s", strat, out)
		}
	}
	// All-strategies explain should show the one-scan-per-relation shape.
	out, _ := eng.Explain(checked, Options{Strategies: AllStrategies})
	if !strings.Contains(out, "strategies: S1+S2+S3+S4") {
		t.Errorf("explain header wrong:\n%s", out)
	}
}

func TestProfessorsOnlyQuery(t *testing.T) {
	// A purely monadic query exercises the no-quantifier path.
	for _, strat := range ladder {
		db := tinyUniversity(t)
		res, _ := evalWith(t, db, workload.ProfessorsSelection(), strat)
		got := names(t, res)
		if len(got) != 3 {
			t.Errorf("%s: professors = %v", strat, got)
		}
	}
}

func TestSubexprQuery(t *testing.T) {
	// The Example 3.2 fragment: two free variables, one dyadic term.
	for _, strat := range ladder {
		db := tinyUniversity(t)
		res, _ := evalWith(t, db, workload.SubexprSelection(), strat)
		if res.Len() != 1 {
			t.Errorf("%s: subexpression rows = %d, want 1", strat, res.Len())
		}
	}
}

func TestMaxRefTuplesGuard(t *testing.T) {
	db := workload.MustUniversity(workload.DefaultConfig(30))
	checked, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(db, nil)
	_, err = eng.Eval(context.Background(), checked, info, Options{Strategies: 0, MaxRefTuples: 10})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("budget guard did not trigger: %v", err)
	}
}

// resultKey renders a result relation as a sorted string for
// order-independent comparison.
func resultKey(rel *relation.Relation) string {
	var keys []string
	for _, tup := range rel.Tuples() {
		keys = append(keys, value.EncodeKey(tup))
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// TestDifferentialAgainstBaseline is the central correctness property:
// on random databases (including empty relations) and random selections,
// the engine under EVERY strategy subset must agree with the
// tuple-substitution baseline.
func TestDifferentialAgainstBaseline(t *testing.T) {
	subsets := []Strategy{0, S1, S2, S3, S4, S1 | S2, S1 | S3, S1 | S4, S2 | S3, S3 | S4,
		S1 | S2 | S3, S1 | S2 | S4, S1 | S3 | S4, S2 | S3 | S4, AllStrategies}
	seeds := int64(250)
	if testing.Short() {
		seeds = 60
	}
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := workload.RandomDB(rng, 5)
		sel := workload.RandomSelection(rng)
		checked, info, err := calculus.Check(sel, db.Catalog())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := baseline.Eval(checked, info, db)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		wantKey := resultKey(want)
		for _, strat := range subsets {
			eng := New(db, nil)
			got, err := eng.Eval(context.Background(), checked, info, Options{Strategies: strat})
			if err != nil {
				t.Fatalf("seed %d %s: engine: %v\nquery: %s", seed, strat, err, checked)
			}
			if gotKey := resultKey(got); gotKey != wantKey {
				t.Fatalf("seed %d %s: result mismatch\nquery: %s\nwant %d rows, got %d rows",
					seed, strat, checked, want.Len(), got.Len())
			}
		}
	}
}

// TestDifferentialOnUniversity runs the paper's own query across random
// university instances and strategy subsets.
func TestDifferentialOnUniversity(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := workload.DefaultConfig(12)
		cfg.Seed = seed
		db := workload.MustUniversity(cfg)
		checked, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
		if err != nil {
			t.Fatal(err)
		}
		want, err := baseline.Eval(checked, info, db)
		if err != nil {
			t.Fatal(err)
		}
		wantKey := resultKey(want)
		for _, strat := range ladder {
			got, _ := evalWith(t, db, workload.SampleSelection(), strat)
			if resultKey(got) != wantKey {
				t.Errorf("seed %d %s: university query mismatch (want %d rows, got %d)",
					seed, strat, want.Len(), got.Len())
			}
		}
	}
}
