package engine

import (
	"context"
	"fmt"
	"strings"

	"pascalr/internal/algebra"
	"pascalr/internal/collection"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// scanTask processes elements during one relation scan. The sink passed
// to process is the scanning worker's — per job, or per shard when the
// scan is split — so counting never races; finish runs once per task
// after the whole logical scan (all shards) completed.
type scanTask interface {
	process(ref value.Value, tuple []value.Value, st *stats.Counters) error
	finish() error
	describe() string
}

// shardableTask is a scanTask whose scan may be split into consecutive
// slot-range shards: shardClone returns a fresh task accumulating into
// shard-local structures, and absorb folds a shard's accumulation back
// into the parent. Absorbing shards in shard order reproduces exactly
// the structures (content and order) a serial scan would have built, so
// a sharded collection phase stays bit-identical to the serial one.
type shardableTask interface {
	scanTask
	shardClone() scanTask
	absorb(shard scanTask) error
}

// evalPreds evaluates a predicate chain; all must hold.
func evalPreds(preds []rowPred, tuple []value.Value, st *stats.Counters) (bool, error) {
	for _, p := range preds {
		ok, err := p(tuple, st)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// rangeTask collects the references of a live variable's range —
// "the collection phase evaluates range expressions". References
// accumulate task-locally and publish into the plan's range-list map at
// finish, under the plan lock: concurrent scans of other variables may
// be reading the map (filtered permanent-index probes) at that moment.
type rangeTask struct {
	p     *plan
	v     string
	preds []rowPred // the range filter, if extended
	refs  []value.Value
}

func (t *rangeTask) process(ref value.Value, tuple []value.Value, st *stats.Counters) error {
	ok, err := evalPreds(t.preds, tuple, st)
	if err != nil || !ok {
		return err
	}
	t.refs = append(t.refs, ref)
	return nil
}

func (t *rangeTask) finish() error {
	t.p.publishRange(t.v, t.refs)
	return nil
}
func (t *rangeTask) describe() string { return "range " + t.v }

func (t *rangeTask) shardClone() scanTask {
	return &rangeTask{p: t.p, v: t.v, preds: t.preds}
}

func (t *rangeTask) absorb(shard scanTask) error {
	t.refs = append(t.refs, shard.(*rangeTask).refs...)
	return nil
}

// slTask builds a single list; shard clones accumulate into a private
// list merged back in shard order.
type slTask struct {
	spec       *slSpec
	rangePreds []rowPred
	out        *collection.SingleList // spec.out, or shard-local
}

func newSLTask(spec *slSpec, rangePreds []rowPred) *slTask {
	return &slTask{spec: spec, rangePreds: rangePreds, out: spec.out}
}

func (t *slTask) process(ref value.Value, tuple []value.Value, st *stats.Counters) error {
	ok, err := evalPreds(t.rangePreds, tuple, st)
	if err != nil || !ok {
		return err
	}
	ok, err = evalPreds(t.spec.preds, tuple, st)
	if err != nil || !ok {
		return err
	}
	t.out.Add(ref)
	return nil
}
func (t *slTask) finish() error    { return nil }
func (t *slTask) describe() string { return "single-list " + t.spec.key }

func (t *slTask) shardClone() scanTask {
	return &slTask{spec: t.spec, rangePreds: t.rangePreds, out: collection.NewSingleList(t.spec.v)}
}

func (t *slTask) absorb(shard scanTask) error {
	t.out.Merge(shard.(*slTask).out)
	return nil
}

// ixTask builds an index over the variable's range; shard clones build
// private indexes merged back in shard order.
type ixTask struct {
	spec       *ixSpec
	rangePreds []rowPred
	out        *collection.Index // spec.out, or shard-local
}

func newIxTask(spec *ixSpec, rangePreds []rowPred) *ixTask {
	return &ixTask{spec: spec, rangePreds: rangePreds, out: spec.out}
}

func (t *ixTask) process(ref value.Value, tuple []value.Value, st *stats.Counters) error {
	ok, err := evalPreds(t.rangePreds, tuple, st)
	if err != nil || !ok {
		return err
	}
	t.out.Add(tuple[t.spec.colIdx], ref)
	return nil
}
func (t *ixTask) finish() error    { return nil }
func (t *ixTask) describe() string { return "index " + t.spec.key }

func (t *ixTask) shardClone() scanTask {
	return &ixTask{spec: t.spec, rangePreds: t.rangePreds, out: collection.NewIndex(t.out.Rel, t.out.Col)}
}

func (t *ixTask) absorb(shard scanTask) error {
	t.out.Merge(shard.(*ixTask).out)
	return nil
}

// groupTask probes earlier-built indexes to produce indirect joins.
// With mutual restriction (strategy 2), an element emits pairs only when
// every probe in the group matched. The probed indexes are read-only by
// the time the task runs (the scheduler orders builds before probes);
// shard clones emit into private indirect joins merged back in shard
// order.
type groupTask struct {
	p          *plan
	grp        *probeGroup
	rangePreds []rowPred
	outs       []*collection.IndirectJoin // per probe: pr.out, or shard-local
	matchBuf   [][]value.Value
}

func newGroupTask(p *plan, grp *probeGroup, rangePreds []rowPred) *groupTask {
	t := &groupTask{p: p, grp: grp, rangePreds: rangePreds}
	for _, pr := range grp.probes {
		t.outs = append(t.outs, pr.out)
	}
	return t
}

func (t *groupTask) process(ref value.Value, tuple []value.Value, st *stats.Counters) error {
	ok, err := evalPreds(t.rangePreds, tuple, st)
	if err != nil || !ok {
		return err
	}
	ok, err = evalPreds(t.grp.preds, tuple, st)
	if err != nil || !ok {
		return err
	}
	if t.matchBuf == nil {
		t.matchBuf = make([][]value.Value, len(t.grp.probes))
	}
	for i, pr := range t.grp.probes {
		t.matchBuf[i] = t.matchBuf[i][:0]
		pr.index.probe(t.p, st, pr.op, tuple[pr.probeCol], func(r value.Value) {
			t.matchBuf[i] = append(t.matchBuf[i], r)
		})
		if t.grp.mutual && len(t.matchBuf[i]) == 0 {
			return nil // another probe failed: suppress all pairs (4.2)
		}
	}
	for i := range t.grp.probes {
		for _, r := range t.matchBuf[i] {
			t.outs[i].Add(ref, r)
		}
	}
	return nil
}
func (t *groupTask) finish() error    { return nil }
func (t *groupTask) describe() string { return "probe " + t.grp.key }

func (t *groupTask) shardClone() scanTask {
	c := &groupTask{p: t.p, grp: t.grp, rangePreds: t.rangePreds}
	for _, pr := range t.grp.probes {
		c.outs = append(c.outs, collection.NewIndirectJoin(pr.out.LVar, pr.out.RVar))
	}
	return c
}

func (t *groupTask) absorb(shard scanTask) error {
	for i, out := range shard.(*groupTask).outs {
		t.outs[i].Merge(out)
	}
	return nil
}

// specTask feeds a strategy-4 spec while scanning the eliminated
// variable's range; shard clones feed private runtimes merged back in
// shard order before the parent's finish resolves the predicate.
type specTask struct {
	rt         *specRuntime
	rangePreds []rowPred
	monPreds   []rowPred
	dyCols     []int
}

func (t *specTask) process(ref value.Value, tuple []value.Value, st *stats.Counters) error {
	ok, err := evalPreds(t.rangePreds, tuple, st)
	if err != nil || !ok {
		return err
	}
	monOK, err := evalPreds(t.monPreds, tuple, st)
	if err != nil {
		return err
	}
	t.rt.add(tuple, monOK, t.dyCols)
	return nil
}
func (t *specTask) finish() error { return t.rt.finish() }
func (t *specTask) describe() string {
	return fmt.Sprintf("value-list spec%d (%s)", t.rt.spec.ID, t.rt.spec.Var)
}

func (t *specTask) shardClone() scanTask {
	return &specTask{rt: newSpecRuntime(t.rt.spec), rangePreds: t.rangePreds, monPreds: t.monPreds, dyCols: t.dyCols}
}

func (t *specTask) absorb(shard scanTask) error {
	t.rt.merge(shard.(*specTask).rt)
	return nil
}

// tasksForVar builds the scan tasks of one variable: its range list
// (live variables), its single lists, indexes, probe groups, and spec
// feed.
func (p *plan) tasksForVar(v string) []scanTask {
	node := p.vars[v]
	rangePreds, err := p.rangePredsFor(v)
	if err != nil {
		// Surfaced during the scan phase via an erroring task.
		return []scanTask{&errTask{err: err}}
	}
	var tasks []scanTask
	if node.live && p.needRange[v] {
		tasks = append(tasks, &rangeTask{p: p, v: v, preds: rangePreds})
	}
	for _, key := range sortedKeys(p.sls) {
		if sl := p.sls[key]; sl.v == v {
			tasks = append(tasks, newSLTask(sl, rangePreds))
		}
	}
	for _, key := range sortedKeys(p.ixs) {
		if ix := p.ixs[key]; ix.v == v && ix.out != nil {
			tasks = append(tasks, newIxTask(ix, rangePreds))
		}
	}
	for _, key := range sortedKeys(p.groups) {
		if grp := p.groups[key]; grp.v == v {
			tasks = append(tasks, newGroupTask(p, grp, rangePreds))
		}
	}
	if node.rt != nil {
		task := &specTask{rt: node.rt, rangePreds: rangePreds}
		spec := node.rt.spec
		for _, m := range spec.Monadic {
			pr, err := compileMonadic(m, spec.Var, node.sch)
			if err != nil {
				return []scanTask{&errTask{err: err}}
			}
			task.monPreds = append(task.monPreds, pr)
		}
		for _, n := range spec.NestedMonadic {
			rt, ok := p.specRTs[n.Spec]
			if !ok {
				return []scanTask{&errTask{err: fmt.Errorf("engine: nested spec of %s unplanned", v)}}
			}
			pr, err := compileSemiAtom(n, node.sch, rt)
			if err != nil {
				return []scanTask{&errTask{err: err}}
			}
			task.monPreds = append(task.monPreds, pr)
		}
		for _, d := range spec.Dyadic {
			ci, ok := node.sch.ColIndex(d.VnCol)
			if !ok {
				return []scanTask{&errTask{err: fmt.Errorf("engine: relation %s has no component %s", node.sch.Name, d.VnCol)}}
			}
			task.dyCols = append(task.dyCols, ci)
		}
		tasks = append(tasks, task)
	}
	return tasks
}

// errTask defers a planning error into the scan phase.
type errTask struct{ err error }

func (t *errTask) process(value.Value, []value.Value, *stats.Counters) error { return t.err }
func (t *errTask) finish() error                                             { return t.err }
func (t *errTask) describe() string                                          { return "error" }

func (p *plan) rangePredsFor(v string) ([]rowPred, error) {
	node := p.vars[v]
	pr, err := rangeFilterPred(node.rng, node.sch)
	if err != nil {
		return nil, err
	}
	if pr == nil {
		return nil, nil
	}
	return []rowPred{pr}, nil
}

// runScans executes the collection phase: every job is one scan, run
// serially on this goroutine or — with Parallelism > 1 — fanned out to
// the sched worker pool (see exec_parallel.go). The caller holds the
// database read lock for the duration, so scans, permanent-index
// probes, and the deferred index-index joins all read one consistent
// snapshot. Cancellation is checked between jobs and every
// scanCheckInterval tuples within a scan, so a long scan aborts
// promptly with ctx.Err().
func (p *plan) runScans(ctx context.Context) error {
	if p.par > 1 && len(p.jobs) > 0 {
		if err := p.runScansParallel(ctx); err != nil {
			return err
		}
	} else {
		for ji, job := range p.jobs {
			sp := p.collSp.Start("scan " + job.rel.Name())
			if ji < len(p.jobSpans) {
				p.jobSpans[ji] = sp
			}
			err := p.runScanJob(ctx, job, p.st)
			sp.End()
			if err != nil {
				return err
			}
		}
	}
	// Materialize deferred index-index joins.
	for _, d := range p.deferred {
		if err := ctx.Err(); err != nil {
			return err
		}
		sp := p.collSp.Start("deferred-join")
		p.materializeDeferred(d)
		if sp != nil {
			sp.SetAttr("key", d.key)
			sp.SetInt("pairs", int64(d.out.Len()))
			sp.End()
		}
	}
	p.recordStructures()
	return nil
}

// runScanJob runs one whole scan job — the unsharded case — counting
// into st: one scan start, the tuples read, and everything the tasks'
// predicates and probes count.
func (p *plan) runScanJob(ctx context.Context, job *scanJob, st *stats.Counters) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	st.CountScan(job.rel.Name())
	if err := p.scanSlotRange(ctx, job, job.tasks, st, 0, job.rel.SlotSpan()); err != nil {
		return err
	}
	for _, t := range job.tasks {
		if err := t.finish(); err != nil {
			return err
		}
	}
	return nil
}

// scanSlotRange drives the given tasks over one slot range of the job's
// relation — a full scan, or one shard of a split scan.
func (p *plan) scanSlotRange(ctx context.Context, job *scanJob, tasks []scanTask, st *stats.Counters, lo, hi int) error {
	var scanErr error
	n := 0
	err := job.rel.ScanSlots(st, lo, hi, func(ref value.Value, tuple []value.Value) bool {
		if n%scanCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				scanErr = err
				return false
			}
		}
		n++
		for _, t := range tasks {
			if err := t.process(ref, tuple, st); err != nil {
				scanErr = err
				return false
			}
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// scanCheckInterval is how many scanned tuples pass between context
// checks inside one relation scan.
const scanCheckInterval = 1024

// effLen is the number of entries an index side actually contributes: a
// filtered permanent index is restricted to the variable's range list,
// so its raw length overstates the drivable entries.
func (p *plan) effLen(ix *ixSpec) int {
	if ix.perm != nil && ix.filtered {
		return len(p.rangeLst[ix.v])
	}
	return ix.length()
}

// driveSmallerSide reports whether a deferred join over op benefits
// from driving the probing with the smaller index: equality probes are
// one hash lookup each, ordered probes one binary search each, so for
// both the probe count — not the output — scales with the driving side.
// <> probes traverse the other side's whole value list either way, so
// nothing is gained by flipping.
func driveSmallerSide(op value.CmpOp) bool {
	switch op {
	case value.OpEq, value.OpLt, value.OpLe, value.OpGt, value.OpGe:
		return true
	}
	return false
}

// materializeDeferred joins two indexes into an indirect join without
// touching the base relation again. Under cost-based planning the
// smaller index's entries drive the probing (equality and ordered
// operators alike), minimizing probe count at identical output.
func (p *plan) materializeDeferred(d *deferredIJ) {
	if p.est != nil && driveSmallerSide(d.op) && p.effLen(d.lIx) > p.effLen(d.rIx) {
		d.rIx.entriesDo(p, func(v, rref value.Value) {
			d.lIx.probe(p, p.st, d.op.Flip(), v, func(lref value.Value) {
				d.out.Add(lref, rref)
			})
		})
		return
	}
	d.lIx.entriesDo(p, func(v, lref value.Value) {
		d.rIx.probe(p, p.st, d.op, v, func(rref value.Value) {
			d.out.Add(lref, rref)
		})
	})
}

// emptyLiveVars returns the live variables whose (possibly extended)
// ranges turned out empty — the Lemma 1 adaptation triggers. Variables
// without materialized range lists have base ranges, which the
// pre-fold guarantees non-empty.
func (p *plan) emptyLiveVars() []string {
	var out []string
	for _, v := range p.order {
		node := p.vars[v]
		if node.live && p.needRange[v] && len(p.rangeLst[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// freeRangeEmpty reports whether a free variable's range is empty,
// consulting the materialized list when one exists and the base
// relation otherwise.
func (p *plan) freeRangeEmpty(v string) bool {
	if p.needRange[v] {
		return len(p.rangeLst[v]) == 0
	}
	return p.vars[v].rel.Len() == 0
}

func (p *plan) recordStructures() {
	for _, key := range sortedKeys(p.sls) {
		p.st.RecordStructure(key, "single-list", p.sls[key].out.Len())
	}
	for _, key := range sortedKeys(p.ixs) {
		p.st.RecordStructure(key, "index", p.ixs[key].length())
	}
	for _, grp := range p.groups {
		for _, pr := range grp.probes {
			p.st.RecordStructure("ij|"+grp.v+"-"+pr.index.v, "indirect-join", pr.out.Len())
		}
	}
	for _, d := range p.deferred {
		p.st.RecordStructure(d.key, "indirect-join", d.out.Len())
	}
	for _, rt := range p.specRTs {
		p.st.RecordStructure(fmt.Sprintf("vl|spec%d|%s", rt.spec.ID, rt.spec.Var), "value-list", rt.Size())
	}
}

// liveVars returns free variables then surviving prefix variables.
func (p *plan) liveVars() []string {
	out := make([]string, 0, len(p.x.Free)+len(p.x.Prefix))
	for _, d := range p.x.Free {
		out = append(out, d.Var)
	}
	for _, q := range p.x.Prefix {
		out = append(out, q.Var)
	}
	return out
}

// combine runs the combination phase: per-conjunction n-tuples of
// references, union over the disjunction, then quantifier elimination
// right-to-left (projection for SOME, division for ALL). It returns a
// reference relation over the free variables. Cancellation and the
// reference-tuple budget are checked between algebra operations.
func (p *plan) combine(ctx context.Context, maxRefTuples int64) (*algebra.RefRel, error) {
	live := p.liveVars()
	var union *algebra.RefRel

	conjRels := make([]*algebra.RefRel, 0, len(p.conjs))
	if p.x.Const != nil && *p.x.Const {
		// Constant TRUE matrix: the n-tuples are the full Cartesian
		// product of the live ranges; quantifiers then collapse over
		// their (non-empty) ranges, so only the free variables matter.
		pieces := make([]*algebra.RefRel, 0, len(p.x.Free))
		for _, d := range p.x.Free {
			pieces = append(pieces, algebra.FromRefs(d.Var, p.rangeLst[d.Var], p.st))
		}
		joined, err := p.greedyJoin(ctx, pieces, maxRefTuples)
		if err != nil {
			return nil, err
		}
		return joined, nil
	}

	for ci, cp := range p.conjs {
		skip := false
		for _, rt := range cp.consts {
			if !rt.resolved {
				return nil, fmt.Errorf("engine: unresolved constant spec in conjunction %d", ci)
			}
			if !rt.constVal {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		var pieces []*algebra.RefRel
		for i, ij := range cp.ijs {
			pieces = append(pieces, algebra.FromPairs(cp.ijNames[i][0], cp.ijNames[i][1], ij.Pairs(), p.st))
		}
		for _, sl := range cp.sls {
			pieces = append(pieces, algebra.FromRefs(sl.v, sl.out.Refs(), p.st))
		}
		// Unconstrained live variables enter as their full range lists —
		// the Cartesian blow-up the paper's strategies fight.
		for _, v := range live {
			if !cp.consumed[v] {
				pieces = append(pieces, algebra.FromRefs(v, p.rangeLst[v], p.st))
			}
		}
		if len(pieces) == 0 {
			return nil, fmt.Errorf("engine: conjunction %d has no pieces", ci)
		}
		joined, err := p.greedyJoin(ctx, pieces, maxRefTuples)
		if err != nil {
			return nil, err
		}
		p.st.RecordStructure(fmt.Sprintf("conj%d", ci), "refrel", joined.Len())
		conjRels = append(conjRels, joined)
	}

	if len(conjRels) == 0 {
		return algebra.New(freeVarNames(p), p.st), nil
	}
	union = conjRels[0]
	for _, r := range conjRels[1:] {
		u, err := algebra.Union(ctx, union, r, p.st)
		if err != nil {
			return nil, err
		}
		union = u
	}
	p.st.RecordStructure("union", "refrel", union.Len())

	// Quantifiers are evaluated from right to left.
	for i := len(p.x.Prefix) - 1; i >= 0; i-- {
		q := p.x.Prefix[i]
		if q.All {
			div, err := algebra.Divide(ctx, union, q.Var, p.rangeLst[q.Var], p.st)
			if err != nil {
				return nil, err
			}
			union = div
		} else {
			keep := make([]string, 0, len(union.Vars())-1)
			for _, v := range union.Vars() {
				if v != q.Var {
					keep = append(keep, v)
				}
			}
			proj, err := algebra.Project(ctx, union, keep, p.st)
			if err != nil {
				return nil, err
			}
			union = proj
		}
		if err := checkLimits(ctx, p, maxRefTuples); err != nil {
			return nil, err
		}
	}
	return union, nil
}

func freeVarNames(p *plan) []string {
	out := make([]string, len(p.x.Free))
	for i, d := range p.x.Free {
		out[i] = d.Var
	}
	return out
}

// greedyJoin combines pieces into a single reference relation. The
// static plan joins variable-sharing pairs with the smallest size
// product first; the cost-based plan instead picks the pair with the
// smallest estimated join output (|a|·|b| over the larger distinct count
// of the shared variables), so equality-linked pieces whose hash join
// collapses the product are taken before pairs that merely look small.
// Disconnected pieces fall back to Cartesian products either way.
func (p *plan) greedyJoin(ctx context.Context, pieces []*algebra.RefRel, maxRefTuples int64) (*algebra.RefRel, error) {
	for len(pieces) > 1 {
		bi, bj, bestShared, bestProd := -1, -1, false, int64(0)
		bestEst := 0.0
		for i := 0; i < len(pieces); i++ {
			for j := i + 1; j < len(pieces); j++ {
				var est float64
				var sharedVars bool
				if p.est != nil {
					est, sharedVars = algebra.EstimateJoinSize(pieces[i], pieces[j])
				} else {
					for _, v := range pieces[i].Vars() {
						if _, ok := pieces[j].ColIdx(v); ok {
							sharedVars = true
							break
						}
					}
				}
				prod := int64(pieces[i].Len()) * int64(pieces[j].Len())
				better := false
				switch {
				case bi < 0:
					better = true
				case sharedVars != bestShared:
					better = sharedVars
				case p.est != nil && est != bestEst:
					better = est < bestEst
				default:
					better = prod < bestProd
				}
				if better {
					bi, bj, bestShared, bestProd, bestEst = i, j, sharedVars, prod, est
				}
			}
		}
		jsp := p.combSp.Start("join")
		joined, err := algebra.Join(ctx, pieces[bi], pieces[bj], p.st)
		if err != nil {
			jsp.End()
			return nil, err
		}
		est := -1.0
		if p.est != nil {
			est = bestEst
		}
		p.joinLog = append(p.joinLog, joinStep{
			vars: strings.Join(joined.Vars(), ","), est: est, got: joined.Len(),
		})
		if jsp != nil {
			jsp.SetAttr("vars", strings.Join(joined.Vars(), ","))
			jsp.SetInt("actual", int64(joined.Len()))
			if est >= 0 {
				jsp.SetFloat("est", est)
			}
			jsp.End()
		}
		next := make([]*algebra.RefRel, 0, len(pieces)-1)
		for k, r := range pieces {
			if k != bi && k != bj {
				next = append(next, r)
			}
		}
		pieces = append(next, joined)
		if err := checkLimits(ctx, p, maxRefTuples); err != nil {
			return nil, err
		}
	}
	return pieces[0], nil
}

// checkLimits enforces the combination phase's two abort conditions:
// context cancellation and the reference-tuple budget. The budget
// bounds this execution's materialization (the counter delta since plan
// creation), not the shared sink's cumulative total.
func checkLimits(ctx context.Context, p *plan, maxRefTuples int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if maxRefTuples > 0 && p.st != nil && p.st.RefTuples-p.refBase > maxRefTuples {
		return fmt.Errorf("engine: combination phase exceeded %d reference tuples", maxRefTuples)
	}
	return nil
}
