package engine

import (
	"context"
	"fmt"

	"pascalr/internal/algebra"
	"pascalr/internal/value"
)

// scanTask processes elements during one relation scan.
type scanTask interface {
	process(ref value.Value, tuple []value.Value) error
	finish() error
	describe() string
}

// evalPreds evaluates a predicate chain; all must hold.
func evalPreds(preds []rowPred, tuple []value.Value) (bool, error) {
	for _, p := range preds {
		ok, err := p(tuple)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// rangeTask collects the references of a live variable's range —
// "the collection phase evaluates range expressions".
type rangeTask struct {
	p     *plan
	v     string
	preds []rowPred // the range filter, if extended
}

func (t *rangeTask) process(ref value.Value, tuple []value.Value) error {
	ok, err := evalPreds(t.preds, tuple)
	if err != nil || !ok {
		return err
	}
	t.p.rangeLst[t.v] = append(t.p.rangeLst[t.v], ref)
	return nil
}
func (t *rangeTask) finish() error    { return nil }
func (t *rangeTask) describe() string { return "range " + t.v }

// slTask builds a single list.
type slTask struct {
	spec       *slSpec
	rangePreds []rowPred
}

func (t *slTask) process(ref value.Value, tuple []value.Value) error {
	ok, err := evalPreds(t.rangePreds, tuple)
	if err != nil || !ok {
		return err
	}
	ok, err = evalPreds(t.spec.preds, tuple)
	if err != nil || !ok {
		return err
	}
	t.spec.out.Add(ref)
	return nil
}
func (t *slTask) finish() error    { return nil }
func (t *slTask) describe() string { return "single-list " + t.spec.key }

// ixTask builds an index over the variable's range.
type ixTask struct {
	spec       *ixSpec
	rangePreds []rowPred
}

func (t *ixTask) process(ref value.Value, tuple []value.Value) error {
	ok, err := evalPreds(t.rangePreds, tuple)
	if err != nil || !ok {
		return err
	}
	t.spec.out.Add(tuple[t.spec.colIdx], ref)
	return nil
}
func (t *ixTask) finish() error    { return nil }
func (t *ixTask) describe() string { return "index " + t.spec.key }

// groupTask probes earlier-built indexes to produce indirect joins.
// With mutual restriction (strategy 2), an element emits pairs only when
// every probe in the group matched.
type groupTask struct {
	p          *plan
	grp        *probeGroup
	rangePreds []rowPred
	matchBuf   [][]value.Value
}

func (t *groupTask) process(ref value.Value, tuple []value.Value) error {
	ok, err := evalPreds(t.rangePreds, tuple)
	if err != nil || !ok {
		return err
	}
	ok, err = evalPreds(t.grp.preds, tuple)
	if err != nil || !ok {
		return err
	}
	if t.matchBuf == nil {
		t.matchBuf = make([][]value.Value, len(t.grp.probes))
	}
	for i, pr := range t.grp.probes {
		t.matchBuf[i] = t.matchBuf[i][:0]
		pr.index.probe(t.p, pr.op, tuple[pr.probeCol], func(r value.Value) {
			t.matchBuf[i] = append(t.matchBuf[i], r)
		})
		if t.grp.mutual && len(t.matchBuf[i]) == 0 {
			return nil // another probe failed: suppress all pairs (4.2)
		}
	}
	for i, pr := range t.grp.probes {
		for _, r := range t.matchBuf[i] {
			pr.out.Add(ref, r)
		}
	}
	return nil
}
func (t *groupTask) finish() error    { return nil }
func (t *groupTask) describe() string { return "probe " + t.grp.key }

// specTask feeds a strategy-4 spec while scanning the eliminated
// variable's range.
type specTask struct {
	rt         *specRuntime
	rangePreds []rowPred
	monPreds   []rowPred
	dyCols     []int
}

func (t *specTask) process(ref value.Value, tuple []value.Value) error {
	ok, err := evalPreds(t.rangePreds, tuple)
	if err != nil || !ok {
		return err
	}
	monOK, err := evalPreds(t.monPreds, tuple)
	if err != nil {
		return err
	}
	t.rt.add(tuple, monOK, t.dyCols)
	return nil
}
func (t *specTask) finish() error { return t.rt.finish() }
func (t *specTask) describe() string {
	return fmt.Sprintf("value-list spec%d (%s)", t.rt.spec.ID, t.rt.spec.Var)
}

// tasksForVar builds the scan tasks of one variable: its range list
// (live variables), its single lists, indexes, probe groups, and spec
// feed.
func (p *plan) tasksForVar(v string) []scanTask {
	node := p.vars[v]
	rangePreds, err := p.rangePredsFor(v)
	if err != nil {
		// Surfaced during the scan phase via an erroring task.
		return []scanTask{&errTask{err: err}}
	}
	var tasks []scanTask
	if node.live && p.needRange[v] {
		tasks = append(tasks, &rangeTask{p: p, v: v, preds: rangePreds})
	}
	for _, key := range sortedKeys(p.sls) {
		if sl := p.sls[key]; sl.v == v {
			tasks = append(tasks, &slTask{spec: sl, rangePreds: rangePreds})
		}
	}
	for _, key := range sortedKeys(p.ixs) {
		if ix := p.ixs[key]; ix.v == v && ix.out != nil {
			tasks = append(tasks, &ixTask{spec: ix, rangePreds: rangePreds})
		}
	}
	for _, key := range sortedKeys(p.groups) {
		if grp := p.groups[key]; grp.v == v {
			tasks = append(tasks, &groupTask{p: p, grp: grp, rangePreds: rangePreds})
		}
	}
	if node.rt != nil {
		task := &specTask{rt: node.rt, rangePreds: rangePreds}
		spec := node.rt.spec
		for _, m := range spec.Monadic {
			pr, err := compileMonadic(m, spec.Var, node.sch, p.st)
			if err != nil {
				return []scanTask{&errTask{err: err}}
			}
			task.monPreds = append(task.monPreds, pr)
		}
		for _, n := range spec.NestedMonadic {
			rt, ok := p.specRTs[n.Spec]
			if !ok {
				return []scanTask{&errTask{err: fmt.Errorf("engine: nested spec of %s unplanned", v)}}
			}
			pr, err := compileSemiAtom(n, node.sch, rt, p.st)
			if err != nil {
				return []scanTask{&errTask{err: err}}
			}
			task.monPreds = append(task.monPreds, pr)
		}
		for _, d := range spec.Dyadic {
			ci, ok := node.sch.ColIndex(d.VnCol)
			if !ok {
				return []scanTask{&errTask{err: fmt.Errorf("engine: relation %s has no component %s", node.sch.Name, d.VnCol)}}
			}
			task.dyCols = append(task.dyCols, ci)
		}
		tasks = append(tasks, task)
	}
	return tasks
}

// errTask defers a planning error into the scan phase.
type errTask struct{ err error }

func (t *errTask) process(value.Value, []value.Value) error { return t.err }
func (t *errTask) finish() error                            { return t.err }
func (t *errTask) describe() string                         { return "error" }

func (p *plan) rangePredsFor(v string) ([]rowPred, error) {
	node := p.vars[v]
	pr, err := rangeFilterPred(node.rng, node.sch, p.st)
	if err != nil {
		return nil, err
	}
	if pr == nil {
		return nil, nil
	}
	return []rowPred{pr}, nil
}

// runScans executes the collection phase: every job is one scan.
// Cancellation is checked between jobs and every scanCheckInterval
// tuples within a scan, so a long scan aborts promptly with ctx.Err().
func (p *plan) runScans(ctx context.Context) error {
	for _, job := range p.jobs {
		if err := ctx.Err(); err != nil {
			return err
		}
		var scanErr error
		n := 0
		job.rel.Scan(func(ref value.Value, tuple []value.Value) bool {
			if n%scanCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					scanErr = err
					return false
				}
			}
			n++
			for _, t := range job.tasks {
				if err := t.process(ref, tuple); err != nil {
					scanErr = err
					return false
				}
			}
			return true
		})
		if scanErr != nil {
			return scanErr
		}
		for _, t := range job.tasks {
			if err := t.finish(); err != nil {
				return err
			}
		}
	}
	// Materialize deferred index-index joins.
	for _, d := range p.deferred {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.materializeDeferred(d)
	}
	p.recordStructures()
	return nil
}

// scanCheckInterval is how many scanned tuples pass between context
// checks inside one relation scan.
const scanCheckInterval = 1024

// effLen is the number of entries an index side actually contributes: a
// filtered permanent index is restricted to the variable's range list,
// so its raw length overstates the drivable entries.
func (p *plan) effLen(ix *ixSpec) int {
	if ix.perm != nil && ix.filtered {
		return len(p.rangeLst[ix.v])
	}
	return ix.length()
}

// materializeDeferred joins two indexes into an indirect join without
// touching the base relation again. For an equi-join under cost-based
// planning the smaller index's entries drive the probing — each probe is
// one hash lookup into the larger index, so driving with the smaller
// side minimizes probe count at identical output.
func (p *plan) materializeDeferred(d *deferredIJ) {
	if p.est != nil && d.op == value.OpEq && p.effLen(d.lIx) > p.effLen(d.rIx) {
		d.rIx.entriesDo(p, func(v, rref value.Value) {
			d.lIx.probe(p, d.op.Flip(), v, func(lref value.Value) {
				d.out.Add(lref, rref)
			})
		})
		return
	}
	d.lIx.entriesDo(p, func(v, lref value.Value) {
		d.rIx.probe(p, d.op, v, func(rref value.Value) {
			d.out.Add(lref, rref)
		})
	})
}

// emptyLiveVars returns the live variables whose (possibly extended)
// ranges turned out empty — the Lemma 1 adaptation triggers. Variables
// without materialized range lists have base ranges, which the
// pre-fold guarantees non-empty.
func (p *plan) emptyLiveVars() []string {
	var out []string
	for _, v := range p.order {
		node := p.vars[v]
		if node.live && p.needRange[v] && len(p.rangeLst[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// freeRangeEmpty reports whether a free variable's range is empty,
// consulting the materialized list when one exists and the base
// relation otherwise.
func (p *plan) freeRangeEmpty(v string) bool {
	if p.needRange[v] {
		return len(p.rangeLst[v]) == 0
	}
	return p.vars[v].rel.Len() == 0
}

func (p *plan) recordStructures() {
	for _, key := range sortedKeys(p.sls) {
		p.st.RecordStructure(key, "single-list", p.sls[key].out.Len())
	}
	for _, key := range sortedKeys(p.ixs) {
		p.st.RecordStructure(key, "index", p.ixs[key].length())
	}
	for _, grp := range p.groups {
		for _, pr := range grp.probes {
			p.st.RecordStructure("ij|"+grp.v+"-"+pr.index.v, "indirect-join", pr.out.Len())
		}
	}
	for _, d := range p.deferred {
		p.st.RecordStructure(d.key, "indirect-join", d.out.Len())
	}
	for _, rt := range p.specRTs {
		p.st.RecordStructure(fmt.Sprintf("vl|spec%d|%s", rt.spec.ID, rt.spec.Var), "value-list", rt.Size())
	}
}

// liveVars returns free variables then surviving prefix variables.
func (p *plan) liveVars() []string {
	out := make([]string, 0, len(p.x.Free)+len(p.x.Prefix))
	for _, d := range p.x.Free {
		out = append(out, d.Var)
	}
	for _, q := range p.x.Prefix {
		out = append(out, q.Var)
	}
	return out
}

// combine runs the combination phase: per-conjunction n-tuples of
// references, union over the disjunction, then quantifier elimination
// right-to-left (projection for SOME, division for ALL). It returns a
// reference relation over the free variables. Cancellation and the
// reference-tuple budget are checked between algebra operations.
func (p *plan) combine(ctx context.Context, maxRefTuples int64) (*algebra.RefRel, error) {
	live := p.liveVars()
	var union *algebra.RefRel

	conjRels := make([]*algebra.RefRel, 0, len(p.conjs))
	if p.x.Const != nil && *p.x.Const {
		// Constant TRUE matrix: the n-tuples are the full Cartesian
		// product of the live ranges; quantifiers then collapse over
		// their (non-empty) ranges, so only the free variables matter.
		pieces := make([]*algebra.RefRel, 0, len(p.x.Free))
		for _, d := range p.x.Free {
			pieces = append(pieces, algebra.FromRefs(d.Var, p.rangeLst[d.Var], p.st))
		}
		joined, err := p.greedyJoin(ctx, pieces, maxRefTuples)
		if err != nil {
			return nil, err
		}
		return joined, nil
	}

	for ci, cp := range p.conjs {
		skip := false
		for _, rt := range cp.consts {
			if !rt.resolved {
				return nil, fmt.Errorf("engine: unresolved constant spec in conjunction %d", ci)
			}
			if !rt.constVal {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		var pieces []*algebra.RefRel
		for i, ij := range cp.ijs {
			pieces = append(pieces, algebra.FromPairs(cp.ijNames[i][0], cp.ijNames[i][1], ij.Pairs(), p.st))
		}
		for _, sl := range cp.sls {
			pieces = append(pieces, algebra.FromRefs(sl.v, sl.out.Refs(), p.st))
		}
		// Unconstrained live variables enter as their full range lists —
		// the Cartesian blow-up the paper's strategies fight.
		for _, v := range live {
			if !cp.consumed[v] {
				pieces = append(pieces, algebra.FromRefs(v, p.rangeLst[v], p.st))
			}
		}
		if len(pieces) == 0 {
			return nil, fmt.Errorf("engine: conjunction %d has no pieces", ci)
		}
		joined, err := p.greedyJoin(ctx, pieces, maxRefTuples)
		if err != nil {
			return nil, err
		}
		p.st.RecordStructure(fmt.Sprintf("conj%d", ci), "refrel", joined.Len())
		conjRels = append(conjRels, joined)
	}

	if len(conjRels) == 0 {
		return algebra.New(freeVarNames(p), p.st), nil
	}
	union = conjRels[0]
	for _, r := range conjRels[1:] {
		u, err := algebra.Union(ctx, union, r, p.st)
		if err != nil {
			return nil, err
		}
		union = u
	}
	p.st.RecordStructure("union", "refrel", union.Len())

	// Quantifiers are evaluated from right to left.
	for i := len(p.x.Prefix) - 1; i >= 0; i-- {
		q := p.x.Prefix[i]
		if q.All {
			div, err := algebra.Divide(ctx, union, q.Var, p.rangeLst[q.Var], p.st)
			if err != nil {
				return nil, err
			}
			union = div
		} else {
			keep := make([]string, 0, len(union.Vars())-1)
			for _, v := range union.Vars() {
				if v != q.Var {
					keep = append(keep, v)
				}
			}
			proj, err := algebra.Project(ctx, union, keep, p.st)
			if err != nil {
				return nil, err
			}
			union = proj
		}
		if err := checkLimits(ctx, p, maxRefTuples); err != nil {
			return nil, err
		}
	}
	return union, nil
}

func freeVarNames(p *plan) []string {
	out := make([]string, len(p.x.Free))
	for i, d := range p.x.Free {
		out[i] = d.Var
	}
	return out
}

// greedyJoin combines pieces into a single reference relation. The
// static plan joins variable-sharing pairs with the smallest size
// product first; the cost-based plan instead picks the pair with the
// smallest estimated join output (|a|·|b| over the larger distinct count
// of the shared variables), so equality-linked pieces whose hash join
// collapses the product are taken before pairs that merely look small.
// Disconnected pieces fall back to Cartesian products either way.
func (p *plan) greedyJoin(ctx context.Context, pieces []*algebra.RefRel, maxRefTuples int64) (*algebra.RefRel, error) {
	for len(pieces) > 1 {
		bi, bj, bestShared, bestProd := -1, -1, false, int64(0)
		bestEst := 0.0
		for i := 0; i < len(pieces); i++ {
			for j := i + 1; j < len(pieces); j++ {
				var est float64
				var sharedVars bool
				if p.est != nil {
					est, sharedVars = algebra.EstimateJoinSize(pieces[i], pieces[j])
				} else {
					for _, v := range pieces[i].Vars() {
						if _, ok := pieces[j].ColIdx(v); ok {
							sharedVars = true
							break
						}
					}
				}
				prod := int64(pieces[i].Len()) * int64(pieces[j].Len())
				better := false
				switch {
				case bi < 0:
					better = true
				case sharedVars != bestShared:
					better = sharedVars
				case p.est != nil && est != bestEst:
					better = est < bestEst
				default:
					better = prod < bestProd
				}
				if better {
					bi, bj, bestShared, bestProd, bestEst = i, j, sharedVars, prod, est
				}
			}
		}
		joined, err := algebra.Join(ctx, pieces[bi], pieces[bj], p.st)
		if err != nil {
			return nil, err
		}
		next := make([]*algebra.RefRel, 0, len(pieces)-1)
		for k, r := range pieces {
			if k != bi && k != bj {
				next = append(next, r)
			}
		}
		pieces = append(next, joined)
		if err := checkLimits(ctx, p, maxRefTuples); err != nil {
			return nil, err
		}
	}
	return pieces[0], nil
}

// checkLimits enforces the combination phase's two abort conditions:
// context cancellation and the reference-tuple budget. The budget
// bounds this execution's materialization (the counter delta since plan
// creation), not the shared sink's cumulative total.
func checkLimits(ctx context.Context, p *plan, maxRefTuples int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if maxRefTuples > 0 && p.st != nil && p.st.RefTuples-p.refBase > maxRefTuples {
		return fmt.Errorf("engine: combination phase exceeded %d reference tuples", maxRefTuples)
	}
	return nil
}
