package engine

import (
	"context"
	"fmt"
	"strings"

	"pascalr/internal/algebra"
	"pascalr/internal/collection"
	"pascalr/internal/obs"
	"pascalr/internal/sched"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// scanTask processes elements during one relation scan. The sink passed
// to process is the scanning worker's — per job, or per shard when the
// scan is split — so counting never races; finish runs once per task
// after the whole logical scan (all shards) completed.
type scanTask interface {
	process(ref value.Value, tuple []value.Value, st *stats.Counters) error
	finish() error
	describe() string
}

// shardableTask is a scanTask whose scan may be split into consecutive
// slot-range shards: shardClone returns a fresh task accumulating into
// shard-local structures, and absorb folds a shard's accumulation back
// into the parent. Absorbing shards in shard order reproduces exactly
// the structures (content and order) a serial scan would have built, so
// a sharded collection phase stays bit-identical to the serial one.
type shardableTask interface {
	scanTask
	shardClone() scanTask
	absorb(shard scanTask) error
}

// evalPreds evaluates a predicate chain; all must hold.
func evalPreds(preds []rowPred, tuple []value.Value, st *stats.Counters) (bool, error) {
	for _, p := range preds {
		ok, err := p(tuple, st)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// rangeTask collects the references of a live variable's range —
// "the collection phase evaluates range expressions". References
// accumulate task-locally and publish into the plan's range-list map at
// finish, under the plan lock: concurrent scans of other variables may
// be reading the map (filtered permanent-index probes) at that moment.
type rangeTask struct {
	p     *plan
	v     string
	preds []rowPred // the range filter, if extended
	refs  []value.Value

	bRange []batchPred // bulk form of preds (batch.go)
	bOK    bool
}

func (t *rangeTask) process(ref value.Value, tuple []value.Value, st *stats.Counters) error {
	ok, err := evalPreds(t.preds, tuple, st)
	if err != nil || !ok {
		return err
	}
	t.refs = append(t.refs, ref)
	return nil
}

func (t *rangeTask) finish() error {
	t.p.publishRange(t.v, t.refs)
	return nil
}
func (t *rangeTask) describe() string { return "range " + t.v }

func (t *rangeTask) shardClone() scanTask {
	return &rangeTask{p: t.p, v: t.v, preds: t.preds, bRange: t.bRange, bOK: t.bOK}
}

func (t *rangeTask) absorb(shard scanTask) error {
	t.refs = append(t.refs, shard.(*rangeTask).refs...)
	return nil
}

// slTask builds a single list; shard clones accumulate into a private
// list merged back in shard order.
type slTask struct {
	spec       *slSpec
	rangePreds []rowPred
	out        *collection.SingleList // spec.out, or shard-local

	bRange []batchPred // bulk form of rangePreds (batch.go)
	bOK    bool
}

func newSLTask(spec *slSpec, rangePreds []rowPred) *slTask {
	return &slTask{spec: spec, rangePreds: rangePreds, out: spec.out}
}

func (t *slTask) process(ref value.Value, tuple []value.Value, st *stats.Counters) error {
	ok, err := evalPreds(t.rangePreds, tuple, st)
	if err != nil || !ok {
		return err
	}
	ok, err = evalPreds(t.spec.preds, tuple, st)
	if err != nil || !ok {
		return err
	}
	t.out.Add(ref)
	return nil
}
func (t *slTask) finish() error    { return nil }
func (t *slTask) describe() string { return "single-list " + t.spec.key }

func (t *slTask) shardClone() scanTask {
	return &slTask{spec: t.spec, rangePreds: t.rangePreds, out: collection.NewSingleList(t.spec.v), bRange: t.bRange, bOK: t.bOK}
}

func (t *slTask) absorb(shard scanTask) error {
	t.out.Merge(shard.(*slTask).out)
	return nil
}

// ixTask builds an index over the variable's range; shard clones build
// private indexes merged back in shard order.
type ixTask struct {
	spec       *ixSpec
	rangePreds []rowPred
	out        *collection.Index // spec.out, or shard-local

	bRange []batchPred // bulk form of rangePreds (batch.go)
	bOK    bool
}

func newIxTask(spec *ixSpec, rangePreds []rowPred) *ixTask {
	return &ixTask{spec: spec, rangePreds: rangePreds, out: spec.out}
}

func (t *ixTask) process(ref value.Value, tuple []value.Value, st *stats.Counters) error {
	ok, err := evalPreds(t.rangePreds, tuple, st)
	if err != nil || !ok {
		return err
	}
	t.out.Add(tuple[t.spec.colIdx], ref)
	return nil
}
func (t *ixTask) finish() error    { return nil }
func (t *ixTask) describe() string { return "index " + t.spec.key }

func (t *ixTask) shardClone() scanTask {
	return &ixTask{spec: t.spec, rangePreds: t.rangePreds, out: collection.NewIndex(t.out.Rel, t.out.Col), bRange: t.bRange, bOK: t.bOK}
}

func (t *ixTask) absorb(shard scanTask) error {
	t.out.Merge(shard.(*ixTask).out)
	return nil
}

// groupTask probes earlier-built indexes to produce indirect joins.
// With mutual restriction (strategy 2), an element emits pairs only when
// every probe in the group matched. The probed indexes are read-only by
// the time the task runs (the scheduler orders builds before probes);
// shard clones emit into private indirect joins merged back in shard
// order.
type groupTask struct {
	p          *plan
	grp        *probeGroup
	rangePreds []rowPred
	outs       []*collection.IndirectJoin // per probe: pr.out, or shard-local
	matchBuf   [][]value.Value

	bRange []batchPred // bulk form of rangePreds (batch.go)
	bOK    bool
}

func newGroupTask(p *plan, grp *probeGroup, rangePreds []rowPred) *groupTask {
	t := &groupTask{p: p, grp: grp, rangePreds: rangePreds}
	for _, pr := range grp.probes {
		t.outs = append(t.outs, pr.out)
	}
	return t
}

func (t *groupTask) process(ref value.Value, tuple []value.Value, st *stats.Counters) error {
	ok, err := evalPreds(t.rangePreds, tuple, st)
	if err != nil || !ok {
		return err
	}
	ok, err = evalPreds(t.grp.preds, tuple, st)
	if err != nil || !ok {
		return err
	}
	if t.matchBuf == nil {
		t.matchBuf = make([][]value.Value, len(t.grp.probes))
	}
	for i, pr := range t.grp.probes {
		t.matchBuf[i] = t.matchBuf[i][:0]
		pr.index.probe(t.p, st, pr.op, tuple[pr.probeCol], func(r value.Value) {
			t.matchBuf[i] = append(t.matchBuf[i], r)
		})
		if t.grp.mutual && len(t.matchBuf[i]) == 0 {
			return nil // another probe failed: suppress all pairs (4.2)
		}
	}
	for i := range t.grp.probes {
		for _, r := range t.matchBuf[i] {
			t.outs[i].Add(ref, r)
		}
	}
	return nil
}
func (t *groupTask) finish() error    { return nil }
func (t *groupTask) describe() string { return "probe " + t.grp.key }

func (t *groupTask) shardClone() scanTask {
	c := &groupTask{p: t.p, grp: t.grp, rangePreds: t.rangePreds, bRange: t.bRange, bOK: t.bOK}
	for _, pr := range t.grp.probes {
		c.outs = append(c.outs, collection.NewIndirectJoin(pr.out.LVar, pr.out.RVar))
	}
	return c
}

func (t *groupTask) absorb(shard scanTask) error {
	for i, out := range shard.(*groupTask).outs {
		t.outs[i].Merge(out)
	}
	return nil
}

// specTask feeds a strategy-4 spec while scanning the eliminated
// variable's range; shard clones feed private runtimes merged back in
// shard order before the parent's finish resolves the predicate.
type specTask struct {
	rt         *specRuntime
	rangePreds []rowPred
	monPreds   []rowPred
	dyCols     []int

	bRange []batchPred // bulk forms of rangePreds/monPreds (batch.go)
	bMon   []batchPred
	bOK    bool
}

func (t *specTask) process(ref value.Value, tuple []value.Value, st *stats.Counters) error {
	ok, err := evalPreds(t.rangePreds, tuple, st)
	if err != nil || !ok {
		return err
	}
	monOK, err := evalPreds(t.monPreds, tuple, st)
	if err != nil {
		return err
	}
	t.rt.add(tuple, monOK, t.dyCols)
	return nil
}
func (t *specTask) finish() error { return t.rt.finish() }
func (t *specTask) describe() string {
	return fmt.Sprintf("value-list spec%d (%s)", t.rt.spec.ID, t.rt.spec.Var)
}

func (t *specTask) shardClone() scanTask {
	return &specTask{rt: newSpecRuntime(t.rt.spec), rangePreds: t.rangePreds, monPreds: t.monPreds, dyCols: t.dyCols, bRange: t.bRange, bMon: t.bMon, bOK: t.bOK}
}

func (t *specTask) absorb(shard scanTask) error {
	t.rt.merge(shard.(*specTask).rt)
	return nil
}

// tasksForVar builds the scan tasks of one variable: its range list
// (live variables), its single lists, indexes, probe groups, and spec
// feed.
func (p *plan) tasksForVar(v string) []scanTask {
	node := p.vars[v]
	rangePreds, err := p.rangePredsFor(v)
	if err != nil {
		// Surfaced during the scan phase via an erroring task.
		return []scanTask{&errTask{err: err}}
	}
	var bRange []batchPred
	bOK := false
	if p.exec != ExecTuple {
		bRange, bOK = p.rangeBatchPredsFor(v)
	}
	var tasks []scanTask
	if node.live && p.needRange[v] {
		tasks = append(tasks, &rangeTask{p: p, v: v, preds: rangePreds, bRange: bRange, bOK: bOK})
	}
	for _, key := range sortedKeys(p.sls) {
		if sl := p.sls[key]; sl.v == v {
			t := newSLTask(sl, rangePreds)
			t.bRange, t.bOK = bRange, bOK
			tasks = append(tasks, t)
		}
	}
	for _, key := range sortedKeys(p.ixs) {
		if ix := p.ixs[key]; ix.v == v && ix.out != nil {
			t := newIxTask(ix, rangePreds)
			t.bRange, t.bOK = bRange, bOK
			tasks = append(tasks, t)
		}
	}
	for _, key := range sortedKeys(p.groups) {
		if grp := p.groups[key]; grp.v == v {
			t := newGroupTask(p, grp, rangePreds)
			t.bRange, t.bOK = bRange, bOK
			tasks = append(tasks, t)
		}
	}
	if node.rt != nil {
		task := &specTask{rt: node.rt, rangePreds: rangePreds, bRange: bRange, bOK: bOK}
		spec := node.rt.spec
		for _, m := range spec.Monadic {
			pr, err := compileMonadic(m, spec.Var, node.sch)
			if err != nil {
				return []scanTask{&errTask{err: err}}
			}
			task.monPreds = append(task.monPreds, pr)
			if task.bOK {
				bp, berr := compileBatchMonadic(m, spec.Var, node.sch)
				if berr != nil {
					task.bOK = false
				} else {
					task.bMon = append(task.bMon, bp)
				}
			}
		}
		for _, n := range spec.NestedMonadic {
			rt, ok := p.specRTs[n.Spec]
			if !ok {
				return []scanTask{&errTask{err: fmt.Errorf("engine: nested spec of %s unplanned", v)}}
			}
			pr, err := compileSemiAtom(n, node.sch, rt)
			if err != nil {
				return []scanTask{&errTask{err: err}}
			}
			task.monPreds = append(task.monPreds, pr)
			if task.bOK {
				task.bMon = append(task.bMon, liftRowPred(pr))
			}
		}
		for _, d := range spec.Dyadic {
			ci, ok := node.sch.ColIndex(d.VnCol)
			if !ok {
				return []scanTask{&errTask{err: fmt.Errorf("engine: relation %s has no component %s", node.sch.Name, d.VnCol)}}
			}
			task.dyCols = append(task.dyCols, ci)
		}
		tasks = append(tasks, task)
	}
	return tasks
}

// errTask defers a planning error into the scan phase.
type errTask struct{ err error }

func (t *errTask) process(value.Value, []value.Value, *stats.Counters) error { return t.err }
func (t *errTask) finish() error                                             { return t.err }
func (t *errTask) describe() string                                          { return "error" }

func (p *plan) rangePredsFor(v string) ([]rowPred, error) {
	node := p.vars[v]
	pr, err := rangeFilterPred(node.rng, node.sch)
	if err != nil {
		return nil, err
	}
	if pr == nil {
		return nil, nil
	}
	return []rowPred{pr}, nil
}

// runScans executes the collection phase: every job is one scan, run
// serially on this goroutine or — with Parallelism > 1 — fanned out to
// the sched worker pool (see exec_parallel.go). The caller holds the
// database read lock for the duration, so scans, permanent-index
// probes, and the deferred index-index joins all read one consistent
// snapshot. Cancellation is checked between jobs and every
// scanCheckInterval tuples within a scan, so a long scan aborts
// promptly with ctx.Err().
func (p *plan) runScans(ctx context.Context) error {
	if p.par > 1 && len(p.jobs) > 0 {
		if err := p.runScansParallel(ctx); err != nil {
			return err
		}
	} else {
		for ji, job := range p.jobs {
			sp := p.collSp.Start("scan " + job.rel.Name())
			if ji < len(p.jobSpans) {
				p.jobSpans[ji] = sp
			}
			err := p.runScanJob(ctx, job, p.st)
			sp.End()
			if err != nil {
				return err
			}
		}
	}
	if err := p.runDeferred(ctx); err != nil {
		return err
	}
	p.recordStructures()
	return nil
}

// runDeferred materializes the deferred index-index joins — serially,
// or as independent sched jobs when the plan has a worker budget and
// more than one join. Each join reads structures that are frozen once
// the scans complete (the indexes, the range-list map) and writes only
// its own output, so the jobs don't conflict; per-job private sinks
// merge back in deferred order to keep counters bit-identical to the
// serial pass.
func (p *plan) runDeferred(ctx context.Context) error {
	if p.par > 1 && len(p.deferred) > 1 {
		jobs := make([]sched.Job, len(p.deferred))
		sinks := make([]*stats.Counters, len(p.deferred))
		for i, d := range p.deferred {
			i, d := i, d
			sinks[i] = &stats.Counters{}
			jobs[i] = sched.Job{
				Name: "deferred " + d.key,
				Run: func(jctx context.Context) error {
					if err := jctx.Err(); err != nil {
						return err
					}
					sp := p.collSp.Start("deferred-join")
					p.materializeDeferredInto(d, sinks[i])
					if sp != nil {
						sp.SetAttr("key", d.key)
						sp.SetInt("pairs", int64(d.out.Len()))
						sp.End()
					}
					return nil
				},
			}
		}
		err := sched.Run(ctx, p.par, jobs)
		for _, snk := range sinks {
			p.st.Merge(snk)
		}
		return err
	}
	for _, d := range p.deferred {
		if err := ctx.Err(); err != nil {
			return err
		}
		sp := p.collSp.Start("deferred-join")
		p.materializeDeferredInto(d, p.st)
		if sp != nil {
			sp.SetAttr("key", d.key)
			sp.SetInt("pairs", int64(d.out.Len()))
			sp.End()
		}
	}
	return nil
}

// runScanJob runs one whole scan job — the unsharded case — counting
// into st: one scan start, the tuples read, and everything the tasks'
// predicates and probes count.
func (p *plan) runScanJob(ctx context.Context, job *scanJob, st *stats.Counters) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	st.CountScan(job.rel.Name())
	if err := p.scanSlotRange(ctx, job, job.tasks, st, 0, job.rel.SlotSpan()); err != nil {
		return err
	}
	for _, t := range job.tasks {
		if err := t.finish(); err != nil {
			return err
		}
	}
	return nil
}

// scanSlotRange drives the given tasks over one slot range of the job's
// relation — a full scan, or one shard of a split scan. Jobs whose
// tasks all compiled to batch form take the columnar drive instead.
func (p *plan) scanSlotRange(ctx context.Context, job *scanJob, tasks []scanTask, st *stats.Counters, lo, hi int) error {
	if job.batch {
		return p.scanSlotRangeBatch(ctx, job, tasks, st, lo, hi)
	}
	var scanErr error
	n := 0
	err := job.rel.ScanSlots(st, lo, hi, func(ref value.Value, tuple []value.Value) bool {
		if n%scanCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				scanErr = err
				return false
			}
		}
		n++
		for _, t := range tasks {
			if err := t.process(ref, tuple, st); err != nil {
				scanErr = err
				return false
			}
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// scanCheckInterval is how many scanned tuples pass between context
// checks inside one relation scan.
const scanCheckInterval = 1024

// effLen is the number of entries an index side actually contributes: a
// filtered permanent index is restricted to the variable's range list,
// so its raw length overstates the drivable entries.
func (p *plan) effLen(ix *ixSpec) int {
	if ix.perm != nil && ix.filtered {
		return len(p.rangeLst[ix.v])
	}
	return ix.length()
}

// driveSmallerSide reports whether a deferred join over op benefits
// from driving the probing with the smaller index: equality probes are
// one hash lookup each, ordered probes one binary search each, so for
// both the probe count — not the output — scales with the driving side.
// <> probes traverse the other side's whole value list either way, so
// nothing is gained by flipping.
func driveSmallerSide(op value.CmpOp) bool {
	switch op {
	case value.OpEq, value.OpLt, value.OpLe, value.OpGt, value.OpGe:
		return true
	}
	return false
}

// materializeDeferredInto joins two indexes into an indirect join
// without touching the base relation again, counting into st (the
// plan's sink, or a job-private one when deferred joins run in
// parallel). Under cost-based planning the smaller index's entries
// drive the probing (equality and ordered operators alike), minimizing
// probe count at identical output.
func (p *plan) materializeDeferredInto(d *deferredIJ, st *stats.Counters) {
	if p.est != nil && driveSmallerSide(d.op) && p.effLen(d.lIx) > p.effLen(d.rIx) {
		d.rIx.entriesDo(p, func(v, rref value.Value) {
			d.lIx.probe(p, st, d.op.Flip(), v, func(lref value.Value) {
				d.out.Add(lref, rref)
			})
		})
		return
	}
	d.lIx.entriesDo(p, func(v, lref value.Value) {
		d.rIx.probe(p, st, d.op, v, func(rref value.Value) {
			d.out.Add(lref, rref)
		})
	})
}

// emptyLiveVars returns the live variables whose (possibly extended)
// ranges turned out empty — the Lemma 1 adaptation triggers. Variables
// without materialized range lists have base ranges, which the
// pre-fold guarantees non-empty.
func (p *plan) emptyLiveVars() []string {
	var out []string
	for _, v := range p.order {
		node := p.vars[v]
		if node.live && p.needRange[v] && len(p.rangeLst[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// freeRangeEmpty reports whether a free variable's range is empty,
// consulting the materialized list when one exists and the base
// relation otherwise.
func (p *plan) freeRangeEmpty(v string) bool {
	if p.needRange[v] {
		return len(p.rangeLst[v]) == 0
	}
	return p.vars[v].rel.Len() == 0
}

func (p *plan) recordStructures() {
	for _, key := range sortedKeys(p.sls) {
		p.st.RecordStructure(key, "single-list", p.sls[key].out.Len())
	}
	for _, key := range sortedKeys(p.ixs) {
		p.st.RecordStructure(key, "index", p.ixs[key].length())
	}
	for _, grp := range p.groups {
		for _, pr := range grp.probes {
			p.st.RecordStructure("ij|"+grp.v+"-"+pr.index.v, "indirect-join", pr.out.Len())
		}
	}
	for _, d := range p.deferred {
		p.st.RecordStructure(d.key, "indirect-join", d.out.Len())
	}
	for _, rt := range p.specRTs {
		p.st.RecordStructure(fmt.Sprintf("vl|spec%d|%s", rt.spec.ID, rt.spec.Var), "value-list", rt.Size())
	}
}

// liveVars returns free variables then surviving prefix variables.
func (p *plan) liveVars() []string {
	out := make([]string, 0, len(p.x.Free)+len(p.x.Prefix))
	for _, d := range p.x.Free {
		out = append(out, d.Var)
	}
	for _, q := range p.x.Prefix {
		out = append(out, q.Var)
	}
	return out
}

// combState is the per-execution-strand state of the combination
// phase: the counter sink the strand's algebra operations feed (the
// plan's, or a private one when conjunctions run as parallel jobs), the
// span joins hang off, the join log, and the budget checkpoint values
// recorded for the ordered replay below.
type combState struct {
	st *stats.Counters
	// base is st.RefTuples when the state was created, so checkVals are
	// deltas regardless of whether st is shared or private.
	base      int64
	sp        *obs.Span
	joinLog   []joinStep
	checkVals []int64
}

// combBudget is the reference-tuple budget shared by every combination
// strand. base0 is the execution's materialization before the
// combination phase started (relative to the plan's refBase).
type combBudget struct{ max, base0 int64 }

func (b *combBudget) err() error {
	return fmt.Errorf("engine: combination phase exceeded %d reference tuples", b.max)
}

// checkpoint records a budget checkpoint for cs and aborts on
// cancellation or when the strand's own materialization alone exceeds
// the budget. The own-only test is deliberately conservative: a
// strand's delta is a lower bound on the serial cumulative value at the
// same checkpoint, so it can never error where the serial schedule
// would not — cross-strand accumulation is caught by the exact ordered
// replay in combine.
func (p *plan) checkpoint(ctx context.Context, cs *combState, budget *combBudget) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if cs.st == nil {
		return nil
	}
	val := cs.st.RefTuples - cs.base
	cs.checkVals = append(cs.checkVals, val)
	if budget.max > 0 && budget.base0+val > budget.max {
		return budget.err()
	}
	return nil
}

// combine runs the combination phase: per-conjunction n-tuples of
// references, union over the disjunction, then quantifier elimination
// right-to-left (projection for SOME, division for ALL). It returns a
// reference relation over the free variables. Cancellation and the
// reference-tuple budget are checked between algebra operations.
//
// With Parallelism > 1 and several conjunctions, the per-conjunction
// greedy joins run as independent sched jobs: each feeds a private
// counter sink and join log, merged back in conjunction order, so the
// merged counters — and hence the fingerprint — are bit-identical to
// the serial schedule. The budget keeps exactly the serial checkpoints
// (after every join, after every quantifier op), re-checked in
// conjunction order after the jobs complete, so the error/no-error
// outcome matches the serial schedule exactly.
func (p *plan) combine(ctx context.Context, maxRefTuples int64) (*algebra.RefRel, error) {
	live := p.liveVars()
	var union *algebra.RefRel
	budget := &combBudget{max: maxRefTuples, base0: p.st.RefTuples - p.refBase}

	if p.x.Const != nil && *p.x.Const {
		// Constant TRUE matrix: the n-tuples are the full Cartesian
		// product of the live ranges; quantifiers then collapse over
		// their (non-empty) ranges, so only the free variables matter.
		cs := &combState{st: p.st, base: p.st.RefTuples, sp: p.combSp}
		pieces := make([]*algebra.RefRel, 0, len(p.x.Free))
		for _, d := range p.x.Free {
			pieces = append(pieces, algebra.FromRefs(d.Var, p.rangeLst[d.Var], p.st))
		}
		joined, err := p.greedyJoin(ctx, pieces, cs, budget)
		p.joinLog = append(p.joinLog, cs.joinLog...)
		if err != nil {
			return nil, err
		}
		return joined, nil
	}

	// Constant gates are resolved up front so their errors stay
	// deterministic regardless of how the conjunction jobs interleave.
	type conjJob struct {
		ci  int
		cs  *combState
		rel *algebra.RefRel
	}
	var cjobs []*conjJob
	for ci, cp := range p.conjs {
		skip := false
		for _, rt := range cp.consts {
			if !rt.resolved {
				return nil, fmt.Errorf("engine: unresolved constant spec in conjunction %d", ci)
			}
			if !rt.constVal {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		cjobs = append(cjobs, &conjJob{ci: ci, cs: &combState{st: &stats.Counters{}}})
	}

	runConj := func(jctx context.Context, cj *conjJob) error {
		cp, cs := p.conjs[cj.ci], cj.cs
		var pieces []*algebra.RefRel
		for i, ij := range cp.ijs {
			pieces = append(pieces, algebra.FromPairs(cp.ijNames[i][0], cp.ijNames[i][1], ij.Pairs(), cs.st))
		}
		for _, sl := range cp.sls {
			pieces = append(pieces, algebra.FromRefs(sl.v, sl.out.Refs(), cs.st))
		}
		// Unconstrained live variables enter as their full range lists —
		// the Cartesian blow-up the paper's strategies fight.
		for _, v := range live {
			if !cp.consumed[v] {
				pieces = append(pieces, algebra.FromRefs(v, p.rangeLst[v], cs.st))
			}
		}
		if len(pieces) == 0 {
			return fmt.Errorf("engine: conjunction %d has no pieces", cj.ci)
		}
		joined, err := p.greedyJoin(jctx, pieces, cs, budget)
		if err != nil {
			return err
		}
		cs.st.RecordStructure(fmt.Sprintf("conj%d", cj.ci), "refrel", joined.Len())
		cj.rel = joined
		return nil
	}

	var runErr error
	if p.par > 1 && len(cjobs) > 1 {
		jobs := make([]sched.Job, len(cjobs))
		for i, cj := range cjobs {
			cj := cj
			jobs[i] = sched.Job{
				Name: fmt.Sprintf("conj%d", cj.ci),
				Run: func(jctx context.Context) error {
					cj.cs.sp = p.combSp.Start(fmt.Sprintf("conj%d", cj.ci))
					err := runConj(jctx, cj)
					cj.cs.sp.End()
					return err
				},
			}
		}
		if p.combSp != nil {
			p.combSp.SetAttr("exec", "parallel")
		}
		runErr = sched.Run(ctx, p.par, jobs)
	} else {
		for _, cj := range cjobs {
			cj.cs.sp = p.combSp
			if runErr = runConj(ctx, cj); runErr != nil {
				break
			}
		}
	}

	// Merge the strands back in conjunction order — error or not — so
	// counters, structure records, and the join log stay deterministic.
	for _, cj := range cjobs {
		p.st.Merge(cj.cs.st)
		p.joinLog = append(p.joinLog, cj.cs.joinLog...)
	}
	if runErr != nil {
		return nil, runErr
	}

	// Exact budget replay: walk the recorded checkpoints in conjunction
	// order against the cumulative total, reproducing precisely the
	// values the serial schedule's checks would have seen.
	if budget.max > 0 {
		prev := budget.base0
		for _, cj := range cjobs {
			for _, v := range cj.cs.checkVals {
				if prev+v > budget.max {
					return nil, budget.err()
				}
			}
			prev += cj.cs.st.RefTuples
		}
	}

	conjRels := make([]*algebra.RefRel, 0, len(cjobs))
	for _, cj := range cjobs {
		conjRels = append(conjRels, cj.rel)
	}

	if len(conjRels) == 0 {
		return algebra.New(freeVarNames(p), p.st), nil
	}
	union = conjRels[0]
	for _, r := range conjRels[1:] {
		u, err := algebra.Union(ctx, union, r, p.st)
		if err != nil {
			return nil, err
		}
		union = u
	}
	p.st.RecordStructure("union", "refrel", union.Len())

	// Quantifiers are evaluated from right to left.
	for i := len(p.x.Prefix) - 1; i >= 0; i-- {
		q := p.x.Prefix[i]
		if q.All {
			div, err := algebra.Divide(ctx, union, q.Var, p.rangeLst[q.Var], p.st)
			if err != nil {
				return nil, err
			}
			union = div
		} else {
			keep := make([]string, 0, len(union.Vars())-1)
			for _, v := range union.Vars() {
				if v != q.Var {
					keep = append(keep, v)
				}
			}
			proj, err := algebra.Project(ctx, union, keep, p.st)
			if err != nil {
				return nil, err
			}
			union = proj
		}
		if err := checkLimits(ctx, p, maxRefTuples); err != nil {
			return nil, err
		}
	}
	return union, nil
}

func freeVarNames(p *plan) []string {
	out := make([]string, len(p.x.Free))
	for i, d := range p.x.Free {
		out[i] = d.Var
	}
	return out
}

// greedyJoin combines pieces into a single reference relation. The
// static plan joins variable-sharing pairs with the smallest size
// product first; the cost-based plan instead picks the pair with the
// smallest estimated join output (|a|·|b| over the larger distinct count
// of the shared variables), so equality-linked pieces whose hash join
// collapses the product are taken before pairs that merely look small.
// Disconnected pieces fall back to Cartesian products either way.
// Counters, spans, the join log, and budget checkpoints all go through
// cs, so the same code serves the serial schedule (cs over the plan's
// sink and span) and a parallel conjunction job (private sink, per-
// conjunction span).
func (p *plan) greedyJoin(ctx context.Context, pieces []*algebra.RefRel, cs *combState, budget *combBudget) (*algebra.RefRel, error) {
	for len(pieces) > 1 {
		bi, bj, bestShared, bestProd := -1, -1, false, int64(0)
		bestEst := 0.0
		for i := 0; i < len(pieces); i++ {
			for j := i + 1; j < len(pieces); j++ {
				var est float64
				var sharedVars bool
				if p.est != nil {
					est, sharedVars = algebra.EstimateJoinSize(pieces[i], pieces[j])
				} else {
					for _, v := range pieces[i].Vars() {
						if _, ok := pieces[j].ColIdx(v); ok {
							sharedVars = true
							break
						}
					}
				}
				prod := int64(pieces[i].Len()) * int64(pieces[j].Len())
				better := false
				switch {
				case bi < 0:
					better = true
				case sharedVars != bestShared:
					better = sharedVars
				case p.est != nil && est != bestEst:
					better = est < bestEst
				default:
					better = prod < bestProd
				}
				if better {
					bi, bj, bestShared, bestProd, bestEst = i, j, sharedVars, prod, est
				}
			}
		}
		jsp := cs.sp.Start("join")
		joined, err := algebra.Join(ctx, pieces[bi], pieces[bj], cs.st)
		if err != nil {
			jsp.End()
			return nil, err
		}
		est := -1.0
		if p.est != nil {
			est = bestEst
		}
		cs.joinLog = append(cs.joinLog, joinStep{
			vars: strings.Join(joined.Vars(), ","), est: est, got: joined.Len(),
		})
		if jsp != nil {
			jsp.SetAttr("vars", strings.Join(joined.Vars(), ","))
			jsp.SetInt("actual", int64(joined.Len()))
			if est >= 0 {
				jsp.SetFloat("est", est)
			}
			jsp.End()
		}
		next := make([]*algebra.RefRel, 0, len(pieces)-1)
		for k, r := range pieces {
			if k != bi && k != bj {
				next = append(next, r)
			}
		}
		pieces = append(next, joined)
		if err := p.checkpoint(ctx, cs, budget); err != nil {
			return nil, err
		}
	}
	return pieces[0], nil
}

// checkLimits enforces the combination phase's two abort conditions:
// context cancellation and the reference-tuple budget. The budget
// bounds this execution's materialization (the counter delta since plan
// creation), not the shared sink's cumulative total.
func checkLimits(ctx context.Context, p *plan, maxRefTuples int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if maxRefTuples > 0 && p.st != nil && p.st.RefTuples-p.refBase > maxRefTuples {
		return fmt.Errorf("engine: combination phase exceeded %d reference tuples", maxRefTuples)
	}
	return nil
}
