package engine

import (
	"context"
	"strings"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// costDB builds two joinable relations: "small" (smallRows) and "big"
// (bigRows), each with a unique key k and a join column v over 0..9.
func costDB(t *testing.T, smallRows, bigRows int) *relation.DB {
	t.Helper()
	db := relation.NewDB()
	keyt := schema.IntType("keyt", 0, 1<<20)
	vt := schema.IntType("vt", 0, 9)
	for _, spec := range []struct {
		name string
		rows int
	}{{"small", smallRows}, {"big", bigRows}} {
		rel := db.MustCreate(schema.MustRelSchema(spec.name, []schema.Column{
			{Name: "k", Type: keyt},
			{Name: "v", Type: vt},
		}, []string{"k"}))
		for i := 0; i < spec.rows; i++ {
			if _, err := rel.Insert([]value.Value{value.Int(int64(i)), value.Int(int64(i % 10))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// joinSelection declares s (over small, optionally with a selective
// monadic term) BEFORE b (over big), so the static planner always
// indexes small and probes with every big tuple.
func joinSelection(selective bool) *calculus.Selection {
	pred := calculus.Formula(&calculus.Cmp{
		L: calculus.Field{Var: "s", Col: "v"}, Op: value.OpEq,
		R: calculus.Field{Var: "b", Col: "v"},
	})
	if selective {
		pred = calculus.NewAnd(
			&calculus.Cmp{L: calculus.Field{Var: "s", Col: "v"}, Op: value.OpLe, R: calculus.Const{Val: value.Int(0)}},
			pred,
		)
	}
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "s", Col: "k"}, {Var: "b", Col: "k"}},
		Free: []calculus.Decl{
			{Var: "s", Range: &calculus.RangeExpr{Rel: "small"}},
			{Var: "b", Range: &calculus.RangeExpr{Rel: "big"}},
		},
		Pred: pred,
	}
}

// planOrder compiles the physical plan and returns the chosen scan
// order.
func planOrder(t *testing.T, db *relation.DB, sel *calculus.Selection, costBased bool) []string {
	t.Helper()
	checked, _, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	e := New(db, nil)
	opts := Options{Strategies: S1 | S2, CostBased: costBased}
	if costBased {
		opts.Estimator = db.Analyze()
	}
	x, err := e.prepare(checked, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := buildPlan(x, db, &stats.Counters{}, opts.Strategies, planEstimator(opts), 1, ExecAuto)
	if err != nil {
		t.Fatal(err)
	}
	return p.order
}

// TestCostOrderingSkewFlipsOrder is the tie-break test: on a skewed
// workload (selective predicate on the small relation) the cost-based
// planner scans big first so the restricted small side probes, while on
// a uniform workload (equal sizes, no restriction) it keeps the static
// declaration order.
func TestCostOrderingSkewFlipsOrder(t *testing.T) {
	skewed := costDB(t, 40, 400)

	static := planOrder(t, skewed, joinSelection(true), false)
	if got := strings.Join(static, ","); got != "s,b" {
		t.Fatalf("static order = %v, want s,b (declaration order)", static)
	}
	cost := planOrder(t, skewed, joinSelection(true), true)
	if got := strings.Join(cost, ","); got != "b,s" {
		t.Fatalf("cost-based order on skewed data = %v, want b,s (selective side probes)", cost)
	}

	uniform := costDB(t, 100, 100)
	costU := planOrder(t, uniform, joinSelection(false), true)
	if got := strings.Join(costU, ","); got != "s,b" {
		t.Fatalf("cost-based order on uniform data = %v, want s,b (tie falls back to static)", costU)
	}
}

// transientSelection joins big to small with a selective range filter
// on big (extracted into an extended range under S3). big is declared
// first and keeps the larger effective cardinality, so both planners
// scan it first and index its v component — the index implementation
// choice is what differs.
func transientSelection() *calculus.Selection {
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "s", Col: "k"}, {Var: "b", Col: "k"}},
		Free: []calculus.Decl{
			{Var: "b", Range: &calculus.RangeExpr{Rel: "big"}},
			{Var: "s", Range: &calculus.RangeExpr{Rel: "small"}},
		},
		Pred: calculus.NewAnd(
			&calculus.Cmp{L: calculus.Field{Var: "b", Col: "k"}, Op: value.OpLt, R: calculus.Const{Val: value.Int(100)}},
			&calculus.Cmp{L: calculus.Field{Var: "s", Col: "v"}, Op: value.OpEq, R: calculus.Field{Var: "b", Col: "v"}},
		),
	}
}

// TestCostBasedTransientOverFilteredPermanent pins the cost-based
// choice between index implementations: with a permanent index on
// big.v and big's range extended by a selective filter, the static plan
// keeps the paper's permanent-always-wins rule (probing the full index
// and filtering hits against the range list), while the cost-based plan
// builds a transient index over only the surviving tuples — during the
// scan the extended range forces anyway. Results must agree with the
// baseline either way.
func TestCostBasedTransientOverFilteredPermanent(t *testing.T) {
	db := costDB(t, 40, 400)
	if _, err := db.MustRelation("big").CreateIndex("v"); err != nil {
		t.Fatal(err)
	}
	checked, info, err := calculus.Check(transientSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	build := func(costBased bool, strat Strategy) *plan {
		t.Helper()
		e := New(db, nil)
		opts := Options{Strategies: strat, CostBased: costBased}
		if costBased {
			opts.Estimator = db.Estimator()
		}
		x, err := e.prepare(checked, opts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := buildPlan(x, db, &stats.Counters{}, opts.Strategies, planEstimator(opts), 1, ExecAuto)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	hasIx := func(p *plan, key string) bool { _, ok := p.ixs[key]; return ok }

	static := build(false, S1|S2|S3)
	if !hasIx(static, "permix|b|v") {
		t.Errorf("static plan dropped the permanent index: %v", sortedKeys(static.ixs))
	}
	cost := build(true, S1|S2|S3)
	if !hasIx(cost, "ix|b|v") || hasIx(cost, "permix|b|v") {
		t.Errorf("cost-based plan should build a transient index over the filtered range: %v", sortedKeys(cost.ixs))
	}
	// Without S1's scan fusion a transient build pays its own scan, so
	// the permanent index stays even under cost-based planning.
	costS0 := build(true, S2|S3)
	if !hasIx(costS0, "permix|b|v") {
		t.Errorf("cost-based plan without S1 should keep the permanent index: %v", sortedKeys(costS0.ixs))
	}

	// End-to-end: both planners agree with the baseline.
	want, err := baseline.Eval(checked, info, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, costBased := range []bool{false, true} {
		opts := Options{Strategies: S1 | S2 | S3, CostBased: costBased}
		if costBased {
			opts.Estimator = db.Estimator()
		}
		res, err := New(db, nil).Eval(context.Background(), checked, info, opts)
		if err != nil {
			t.Fatal(err)
		}
		if resultKey(res) != resultKey(want) {
			t.Fatalf("cost=%v: transient/permanent index plans disagree with baseline", costBased)
		}
	}
}

// TestAutoEstimatorRefreshesOnRebuild: a compiled plan that derived its
// own statistics must pick up a statistics rebuild (Analyze, drift
// re-bucketing) on the next execution even though rebuilds do not move
// the content version.
func TestAutoEstimatorRefreshesOnRebuild(t *testing.T) {
	db := costDB(t, 10, 20)
	checked, info, err := calculus.Check(joinSelection(false), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New(db, nil).Compile(checked, info, Options{Strategies: S1, CostBased: true})
	if err != nil {
		t.Fatal(err)
	}
	_, opts1, _, err := plan.instance()
	if err != nil {
		t.Fatal(err)
	}
	if _, optsQuiet, _, err := plan.instance(); err != nil || optsQuiet.Estimator != opts1.Estimator {
		t.Fatal("quiet database must reuse the cached estimator assembly")
	}
	// A mutation of a relation the plan never touches must not disturb
	// it — per-relation staleness.
	other := db.MustCreate(schema.MustRelSchema("unrelated", []schema.Column{
		{Name: "k", Type: schema.IntType("ukt", 0, 100)},
	}, []string{"k"}))
	if _, err := other.Insert([]value.Value{value.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, optsOther, _, err := plan.instance(); err != nil || optsOther.Estimator != opts1.Estimator {
		t.Fatal("unrelated-relation mutation invalidated the plan's estimator")
	}

	db.Analyze() // rebuild: bumps the plan's relations' counters, not the version
	_, opts2, _, err := plan.instance()
	if err != nil {
		t.Fatal(err)
	}
	if opts2.Estimator == opts1.Estimator {
		t.Fatal("statistics rebuild did not reach the compiled plan's estimator")
	}
}

// TestCostOrderingReducesWork verifies the cost argument itself: on the
// skewed join the cost-based plan issues fewer index probes and
// materializes fewer reference tuples than the static plan, at an
// identical result.
func TestCostOrderingReducesWork(t *testing.T) {
	db := costDB(t, 40, 400)
	sel := joinSelection(true)
	checked, info, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Eval(checked, info, db)
	if err != nil {
		t.Fatal(err)
	}

	run := func(costBased bool) (*stats.Counters, string) {
		st := &stats.Counters{}
		res, err := New(db, st).Eval(context.Background(), checked, info, Options{Strategies: S1 | S2, CostBased: costBased})
		if err != nil {
			t.Fatal(err)
		}
		return st, resultKey(res)
	}
	stStatic, keyStatic := run(false)
	stCost, keyCost := run(true)
	if wantKey := resultKey(want); keyStatic != wantKey || keyCost != wantKey {
		t.Fatal("plans disagree with the baseline result")
	}
	if stCost.IndexProbes >= stStatic.IndexProbes {
		t.Errorf("cost-based probes = %d, want < static %d", stCost.IndexProbes, stStatic.IndexProbes)
	}
	if stCost.RefTuples > stStatic.RefTuples {
		t.Errorf("cost-based ref tuples = %d, want <= static %d", stCost.RefTuples, stStatic.RefTuples)
	}
	if stCost.CostBasedPlans == 0 {
		t.Error("cost-based evaluation did not record a cost-based plan")
	}
	if len(stCost.PlanOrder) == 0 {
		t.Error("plan order not recorded")
	}
}
