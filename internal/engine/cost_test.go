package engine

import (
	"context"
	"strings"
	"testing"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// costDB builds two joinable relations: "small" (smallRows) and "big"
// (bigRows), each with a unique key k and a join column v over 0..9.
func costDB(t *testing.T, smallRows, bigRows int) *relation.DB {
	t.Helper()
	db := relation.NewDB()
	keyt := schema.IntType("keyt", 0, 1<<20)
	vt := schema.IntType("vt", 0, 9)
	for _, spec := range []struct {
		name string
		rows int
	}{{"small", smallRows}, {"big", bigRows}} {
		rel := db.MustCreate(schema.MustRelSchema(spec.name, []schema.Column{
			{Name: "k", Type: keyt},
			{Name: "v", Type: vt},
		}, []string{"k"}))
		for i := 0; i < spec.rows; i++ {
			if _, err := rel.Insert([]value.Value{value.Int(int64(i)), value.Int(int64(i % 10))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// joinSelection declares s (over small, optionally with a selective
// monadic term) BEFORE b (over big), so the static planner always
// indexes small and probes with every big tuple.
func joinSelection(selective bool) *calculus.Selection {
	pred := calculus.Formula(&calculus.Cmp{
		L: calculus.Field{Var: "s", Col: "v"}, Op: value.OpEq,
		R: calculus.Field{Var: "b", Col: "v"},
	})
	if selective {
		pred = calculus.NewAnd(
			&calculus.Cmp{L: calculus.Field{Var: "s", Col: "v"}, Op: value.OpLe, R: calculus.Const{Val: value.Int(0)}},
			pred,
		)
	}
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "s", Col: "k"}, {Var: "b", Col: "k"}},
		Free: []calculus.Decl{
			{Var: "s", Range: &calculus.RangeExpr{Rel: "small"}},
			{Var: "b", Range: &calculus.RangeExpr{Rel: "big"}},
		},
		Pred: pred,
	}
}

// planOrder compiles the physical plan and returns the chosen scan
// order.
func planOrder(t *testing.T, db *relation.DB, sel *calculus.Selection, costBased bool) []string {
	t.Helper()
	checked, _, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	e := New(db, nil)
	opts := Options{Strategies: S1 | S2, CostBased: costBased}
	if costBased {
		opts.Estimator = db.Analyze()
	}
	x, err := e.prepare(checked, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := buildPlan(x, db, &stats.Counters{}, opts.Strategies, planEstimator(opts), 1)
	if err != nil {
		t.Fatal(err)
	}
	return p.order
}

// TestCostOrderingSkewFlipsOrder is the tie-break test: on a skewed
// workload (selective predicate on the small relation) the cost-based
// planner scans big first so the restricted small side probes, while on
// a uniform workload (equal sizes, no restriction) it keeps the static
// declaration order.
func TestCostOrderingSkewFlipsOrder(t *testing.T) {
	skewed := costDB(t, 40, 400)

	static := planOrder(t, skewed, joinSelection(true), false)
	if got := strings.Join(static, ","); got != "s,b" {
		t.Fatalf("static order = %v, want s,b (declaration order)", static)
	}
	cost := planOrder(t, skewed, joinSelection(true), true)
	if got := strings.Join(cost, ","); got != "b,s" {
		t.Fatalf("cost-based order on skewed data = %v, want b,s (selective side probes)", cost)
	}

	uniform := costDB(t, 100, 100)
	costU := planOrder(t, uniform, joinSelection(false), true)
	if got := strings.Join(costU, ","); got != "s,b" {
		t.Fatalf("cost-based order on uniform data = %v, want s,b (tie falls back to static)", costU)
	}
}

// TestCostOrderingReducesWork verifies the cost argument itself: on the
// skewed join the cost-based plan issues fewer index probes and
// materializes fewer reference tuples than the static plan, at an
// identical result.
func TestCostOrderingReducesWork(t *testing.T) {
	db := costDB(t, 40, 400)
	sel := joinSelection(true)
	checked, info, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Eval(checked, info, db)
	if err != nil {
		t.Fatal(err)
	}

	run := func(costBased bool) (*stats.Counters, string) {
		st := &stats.Counters{}
		res, err := New(db, st).Eval(context.Background(), checked, info, Options{Strategies: S1 | S2, CostBased: costBased})
		if err != nil {
			t.Fatal(err)
		}
		return st, resultKey(res)
	}
	stStatic, keyStatic := run(false)
	stCost, keyCost := run(true)
	if wantKey := resultKey(want); keyStatic != wantKey || keyCost != wantKey {
		t.Fatal("plans disagree with the baseline result")
	}
	if stCost.IndexProbes >= stStatic.IndexProbes {
		t.Errorf("cost-based probes = %d, want < static %d", stCost.IndexProbes, stStatic.IndexProbes)
	}
	if stCost.RefTuples > stStatic.RefTuples {
		t.Errorf("cost-based ref tuples = %d, want <= static %d", stCost.RefTuples, stStatic.RefTuples)
	}
	if stCost.CostBasedPlans == 0 {
		t.Error("cost-based evaluation did not record a cost-based plan")
	}
	if len(stCost.PlanOrder) == 0 {
		t.Error("plan order not recorded")
	}
}
