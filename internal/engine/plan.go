package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pascalr/internal/calculus"
	"pascalr/internal/collection"
	"pascalr/internal/obs"
	"pascalr/internal/optimizer"
	"pascalr/internal/relation"
	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// varNode is one scan unit: a free variable, a surviving prefix
// variable, or an eliminated strategy-4 variable whose scan only feeds a
// value list.
type varNode struct {
	v    string
	rng  *calculus.RangeExpr
	rel  *relation.Relation
	sch  *schema.RelSchema
	free bool
	live bool // free or still in the prefix (needs a range list)
	rt   *specRuntime
	deps map[string]struct{} // variables whose scans must precede this one
}

// slSpec describes one single list to build: references of v's range
// satisfying preds.
type slSpec struct {
	key   string
	v     string
	label string
	preds []rowPred
	out   *collection.SingleList
	// bPreds is the bulk form of preds; bOK=false pins tasks reading
	// this spec to the tuple path.
	bPreds []batchPred
	bOK    bool
}

// ixSpec describes one index over v's range: either built during v's
// scan, or a permanent access path maintained by the relation (in which
// case no build task is emitted and, when v's range is extended, probe
// hits are filtered against v's range list).
type ixSpec struct {
	key    string
	v      string
	colIdx int
	out    *collection.Index  // built during the scan; nil when permanent
	perm   *relation.ColIndex // permanent access path; nil when built
	// filtered reports that v's range is extended, so permanent-index
	// hits must be checked against the range list.
	filtered bool
}

func (ix *ixSpec) length() int {
	if ix.perm != nil {
		return ix.perm.Len()
	}
	return ix.out.Len()
}

// probe enumerates references whose indexed value iv satisfies
// "pv op iv", applying the range filter for permanent indexes. Probes
// count into st, the probing worker's sink.
func (ix *ixSpec) probe(p *plan, st *stats.Counters, op value.CmpOp, pv value.Value, fn func(value.Value)) {
	if ix.perm == nil {
		ix.out.Probe(st, op, pv, fn)
		return
	}
	if !ix.filtered {
		ix.perm.ProbeStats(st, op, pv, fn)
		return
	}
	in := p.rangeSet(ix.v)
	ix.perm.ProbeStats(st, op, pv, func(ref value.Value) {
		if _, ok := in[value.EncodeKey([]value.Value{ref})]; ok {
			fn(ref)
		}
	})
}

// entriesDo enumerates (value, ref) pairs, applying the range filter for
// permanent indexes.
func (ix *ixSpec) entriesDo(p *plan, fn func(v, ref value.Value)) {
	if ix.perm == nil {
		for _, e := range ix.out.Entries() {
			fn(e.Val, e.Ref)
		}
		return
	}
	if !ix.filtered {
		ix.perm.Entries(fn)
		return
	}
	in := p.rangeSet(ix.v)
	ix.perm.Entries(func(v, ref value.Value) {
		if _, ok := in[value.EncodeKey([]value.Value{ref})]; ok {
			fn(v, ref)
		}
	})
}

// probeRef is one indirect-join probe within a group.
type probeRef struct {
	op       value.CmpOp // oriented: probeValue op indexedValue
	probeCol int
	index    *ixSpec
	out      *collection.IndirectJoin
}

// probeGroup builds one or more indirect joins while scanning v's range.
// Under strategy 2 the group carries the conjunction's monadic
// predicates on v and the probes restrict each other: an element
// produces pairs only if every probe in the group has at least one
// match.
type probeGroup struct {
	key    string
	v      string
	preds  []rowPred
	probes []probeRef
	mutual bool
	// bPreds is the bulk form of preds; bOK=false pins tasks reading
	// this group to the tuple path.
	bPreds []batchPred
	bOK    bool
}

// dyAssign is a dyadic term with its probe/index side assignment.
type dyAssign struct {
	c           *calculus.Cmp
	probeV, ixV string
	probeF, ixF calculus.Field
	op          value.CmpOp // probeValue op indexedValue
	deferToComb bool
}

// deferredIJ is a dyadic term evaluated before the combination phase by
// joining two indexes (used when both sides live in the same scan, so
// probing during the scan would require reading the relation twice).
type deferredIJ struct {
	key    string
	lv, rv string
	op     value.CmpOp // leftValue op rightValue
	lIx    *ixSpec
	rIx    *ixSpec
	out    *collection.IndirectJoin
}

// conjPlan lists the pieces that combine into one conjunction's
// n-tuples.
type conjPlan struct {
	ijs      []*collection.IndirectJoin
	ijNames  [][2]string // LVar, RVar per ij
	sls      []*slSpec
	consts   []*specRuntime  // constant derived atoms gating the conjunction
	consumed map[string]bool // variables constrained by ijs/sls
}

// scanJob is one pass over a relation executing a set of tasks.
type scanJob struct {
	rel   *relation.Relation
	vars  []string
	tasks []scanTask
	// batch marks the job for the vectorized drive: every task compiled
	// to batch form (finalizeBatchJobs). batchCols is the job's column
	// mask — the sorted union of its tasks' footprints, nil when some
	// task reads whole rows. batches counts columnar batches produced
	// across all shards, for EXPLAIN and span attributes.
	batch     bool
	batchCols []int
	batches   atomic.Int64
}

// plan is the compiled physical plan for one evaluation.
type plan struct {
	x     *optimizer.XForm
	db    *relation.DB
	st    *stats.Counters
	strat Strategy
	// par is the collection-phase worker budget; 1 runs the paper's
	// serial schedule on the calling goroutine.
	par int
	// exec selects the collection drive: ExecAuto batches every job
	// whose tasks all compile to bulk form, ExecTuple forces the
	// tuple-at-a-time path everywhere.
	exec ExecMode
	// mu guards the structures that scan workers touch across job
	// boundaries: the range-list map (published by range tasks, read by
	// filtered permanent-index probes of concurrent scans) and the
	// lazily built range sets.
	mu sync.Mutex
	// est drives cost-based scan ordering and combination-phase join
	// ordering; nil keeps the paper's static priorities.
	est       *stats.Estimator
	costCards map[string]float64 // memoized effective cardinalities

	// refBase snapshots the sink's cumulative RefTuples counter at plan
	// creation: the MaxRefTuples budget bounds this execution's delta,
	// not the sink's lifetime total, so re-executing a prepared or
	// cached plan against a shared sink never trips the budget
	// spuriously.
	refBase int64

	vars      map[string]*varNode
	order     []string
	jobs      []*scanJob
	rangeLst  map[string][]value.Value
	needRange map[string]bool
	rangeSets map[string]map[string]struct{}
	sls       map[string]*slSpec
	ixs       map[string]*ixSpec
	groups    map[string]*probeGroup
	deferred  []*deferredIJ
	specRTs   map[*optimizer.SemiSpec]*specRuntime
	conjs     []*conjPlan

	// joinLog records each combination-phase join's estimated and
	// actual output for EXPLAIN reporting. Parallel conjunction jobs
	// append to private logs merged in conjunction order, so no lock
	// guards it.
	joinLog []joinStep

	// collSp/combSp/jobSpans hang this execution's trace spans off the
	// caller's span tree (internal/obs); all nil/empty when tracing is
	// off. jobSpans parallels jobs; each entry is written once by the
	// goroutine that opens the job's span (serially, or at emission time
	// in the parallel path) and read only after the scans complete.
	collSp   *obs.Span
	combSp   *obs.Span
	jobSpans []*obs.Span
}

// joinStep is one greedy-join decision: the variables of the joined
// piece, the estimated output the planner chose it by (-1 under static
// planning), and the actual output size.
type joinStep struct {
	vars string
	est  float64
	got  int
}

func buildPlan(x *optimizer.XForm, db *relation.DB, st *stats.Counters, strat Strategy, est *stats.Estimator, par int, exec ExecMode) (*plan, error) {
	if par < 1 {
		par = 1
	}
	p := &plan{
		x: x, db: db, st: st, strat: strat, est: est, par: par, exec: exec,
		refBase:   st.RefTuples,
		costCards: map[string]float64{},
		vars:      map[string]*varNode{},
		rangeLst:  map[string][]value.Value{},
		needRange: map[string]bool{},
		rangeSets: map[string]map[string]struct{}{},
		sls:       map[string]*slSpec{},
		ixs:       map[string]*ixSpec{},
		groups:    map[string]*probeGroup{},
		specRTs:   map[*optimizer.SemiSpec]*specRuntime{},
	}
	if err := p.buildVarNodes(); err != nil {
		return nil, err
	}
	if err := p.planConjunctions(); err != nil {
		return nil, err
	}
	p.planRangeLists()
	if err := p.orderVars(); err != nil {
		return nil, err
	}
	if err := p.buildJobs(); err != nil {
		return nil, err
	}
	p.finalizeBatchJobs()
	st.RecordPlanOrder(p.order, p.est != nil)
	return p, nil
}

// buildVarNodes creates nodes for free variables, surviving prefix
// variables, and the strategy-4 specs reachable from the matrix, and
// wires scan-order dependencies.
func (p *plan) buildVarNodes() error {
	add := func(v string, rng *calculus.RangeExpr, free, live bool, rt *specRuntime) error {
		rel, ok := p.db.Relation(rng.Rel)
		if !ok {
			return fmt.Errorf("engine: unknown relation %s", rng.Rel)
		}
		if _, dup := p.vars[v]; dup {
			return fmt.Errorf("engine: duplicate scan variable %s", v)
		}
		p.vars[v] = &varNode{
			v: v, rng: rng, rel: rel, sch: rel.Schema(),
			free: free, live: live, rt: rt, deps: map[string]struct{}{},
		}
		return nil
	}
	for _, d := range p.x.Free {
		if err := add(d.Var, d.Range, true, true, nil); err != nil {
			return err
		}
	}
	for _, q := range p.x.Prefix {
		if err := add(q.Var, q.Range, false, true, nil); err != nil {
			return err
		}
	}
	// Specs reachable from matrix atoms, transitively through nesting.
	// Several specs can stem from the same eliminated variable (one per
	// conjunction for SOME), so spec scan nodes get unique names.
	var reach func(s *optimizer.SemiSpec) error
	reach = func(s *optimizer.SemiSpec) error {
		if _, done := p.specRTs[s]; done {
			return nil
		}
		rt := newSpecRuntime(s)
		p.specRTs[s] = rt
		if err := add(specNodeName(s), s.Range, false, false, rt); err != nil {
			return err
		}
		for _, n := range s.NestedMonadic {
			if err := reach(n.Spec); err != nil {
				return err
			}
			// The nested predicate is evaluated while scanning s.Var.
			p.vars[specNodeName(s)].deps[specNodeName(n.Spec)] = struct{}{}
		}
		return nil
	}
	for _, conj := range p.x.Matrix {
		for _, a := range conj {
			if a.Semi == nil {
				continue
			}
			if err := reach(a.Semi.Spec); err != nil {
				return err
			}
			if a.Semi.Var != "" {
				p.vars[a.Semi.Var].deps[specNodeName(a.Semi.Spec)] = struct{}{}
			}
		}
	}
	return nil
}

// specNodeName is the unique scan-node name of a strategy-4 spec.
func specNodeName(s *optimizer.SemiSpec) string {
	return fmt.Sprintf("%s#%d", s.Var, s.ID)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sigOf(atoms []optimizer.Atom) string {
	keys := make([]string, len(atoms))
	for i, a := range atoms {
		keys[i] = a.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "&")
}

// planConjunctions decides, per conjunction, which single lists,
// indexes, indirect joins, and deferred joins to build, creating shared
// structures keyed by content.
func (p *plan) planConjunctions() error {
	for _, conj := range p.x.Matrix {
		cp := &conjPlan{consumed: map[string]bool{}}

		monadic := map[string][]optimizer.Atom{}
		var dyadics []*calculus.Cmp
		for _, a := range conj {
			vars := a.Vars()
			switch len(vars) {
			case 0:
				if a.Semi == nil {
					return fmt.Errorf("engine: constant plain atom %s survived simplification", a)
				}
				cp.consts = append(cp.consts, p.specRTs[a.Semi.Spec])
			case 1:
				monadic[vars[0]] = append(monadic[vars[0]], a)
			case 2:
				dyadics = append(dyadics, a.Cmp)
			default:
				return fmt.Errorf("engine: atom %s mentions %d variables", a, len(vars))
			}
		}

		// Assign probe/index sides; collect which variables probe at
		// least one non-deferred term (strategy-2 fusion applies there).
		probesOf := map[string]bool{}
		var assigns []dyAssign
		for _, c := range dyadics {
			a, err := p.assignSides(c)
			if err != nil {
				return err
			}
			if !a.deferToComb {
				probesOf[a.probeV] = true
			}
			assigns = append(assigns, a)
		}

		s2 := p.strat&S2 != 0

		// Deferred terms become index-index joins.
		groupAssigns := map[string][]dyAssign{}
		for _, a := range assigns {
			if a.deferToComb {
				dij, err := p.deferredJoinFor(a)
				if err != nil {
					return err
				}
				cp.ijs = append(cp.ijs, dij.out)
				cp.ijNames = append(cp.ijNames, [2]string{dij.lv, dij.rv})
				cp.consumed[dij.lv], cp.consumed[dij.rv] = true, true
				continue
			}
			groupAssigns[a.probeV] = append(groupAssigns[a.probeV], a)
		}

		// Probe groups, one per probing variable of this conjunction.
		for _, pv := range sortedKeys(groupAssigns) {
			as := groupAssigns[pv]
			var predAtoms []optimizer.Atom
			if s2 {
				predAtoms = monadic[pv]
			}
			grp, err := p.probeGroupFor(pv, as, predAtoms, s2)
			if err != nil {
				return err
			}
			for _, pr := range grp.probes {
				cp.ijs = append(cp.ijs, pr.out)
				cp.ijNames = append(cp.ijNames, [2]string{pv, pr.index.v})
				cp.consumed[pv], cp.consumed[pr.index.v] = true, true
			}
		}

		// Single lists for variables whose monadic atoms were not folded
		// into a probe group.
		for _, v := range sortedKeys(monadic) {
			if s2 && probesOf[v] {
				continue
			}
			if s2 {
				// Strategy 2 without a dyadic term: one single list for
				// all monadic terms of the conjunction.
				sl, err := p.singleListFor(v, monadic[v])
				if err != nil {
					return err
				}
				cp.sls = append(cp.sls, sl)
			} else {
				// Standard algorithm: one single list per monadic term.
				for _, a := range monadic[v] {
					sl, err := p.singleListFor(v, []optimizer.Atom{a})
					if err != nil {
						return err
					}
					cp.sls = append(cp.sls, sl)
				}
			}
			cp.consumed[v] = true
		}
		p.conjs = append(p.conjs, cp)
	}
	return nil
}

// assignSides picks the probe and index side of a dyadic term: the
// earlier-scanned variable is indexed, the later-scanned probes. When
// both variables range over the same relation and scans are fused
// (strategy 1), the term defers to an index-index join.
func (p *plan) assignSides(c *calculus.Cmp) (dyAssign, error) {
	lf, lok := c.L.(calculus.Field)
	rf, rok := c.R.(calculus.Field)
	if !lok || !rok {
		return dyAssign{}, fmt.Errorf("engine: dyadic term %s lacks two field operands", c)
	}
	lNode, rNode := p.vars[lf.Var], p.vars[rf.Var]
	if lNode == nil || rNode == nil {
		return dyAssign{}, fmt.Errorf("engine: dyadic term %s over unplanned variable", c)
	}
	a := dyAssign{c: c}
	switch {
	case lNode.rel == rNode.rel && p.strat&S1 != 0:
		a.deferToComb = true
		a.probeV, a.ixV = lf.Var, rf.Var
		a.probeF, a.ixF = lf, rf
		a.op = c.Op
	case p.scanBefore(rf.Var, lf.Var):
		a.probeV, a.ixV = lf.Var, rf.Var
		a.probeF, a.ixF = lf, rf
		a.op = c.Op
	default:
		a.probeV, a.ixV = rf.Var, lf.Var
		a.probeF, a.ixF = rf, lf
		a.op = c.Op.Flip()
	}
	if !a.deferToComb {
		// The probe's scan must run after the index's scan.
		p.vars[a.probeV].deps[a.ixV] = struct{}{}
	}
	return a, nil
}

// scanBefore reports whether a's scan will precede b's in the planned
// ordering. Statically that is the base ordering (specs first in
// creation order, then prefix right-to-left, then free variables); with
// an estimator it is the cost ordering of costBefore. Either way it is a
// fixed total order: dependency edges added from it all point forward in
// it, and the topological sort of orderVars breaks ties with the same
// order, so it is a sound oracle for index-side selection.
func (p *plan) scanBefore(a, b string) bool {
	if p.est == nil {
		return p.basePriority(a) < p.basePriority(b)
	}
	return p.costBefore(a, b)
}

// costBefore orders scans by descending estimated effective cardinality
// (ties fall back to the base priority). The later scan of a dyadic term
// is the probe side, which is where monadic restrictions apply during
// probing (strategy 2) and whose post-restriction cardinality bounds the
// indirect join — so the variable expected to retain the fewest elements
// scans last, probing with few tuples and keeping the indirect join
// small, while the bulky side merely gets indexed.
func (p *plan) costBefore(a, b string) bool {
	ca, cb := p.estCard(a), p.estCard(b)
	if ca != cb {
		return ca > cb
	}
	return p.basePriority(a) < p.basePriority(b)
}

// estCard estimates the number of elements of v's range that survive
// its range filter and its monadic matrix restrictions — the variable's
// effective cardinality in the combination phase.
func (p *plan) estCard(v string) float64 {
	if c, ok := p.costCards[v]; ok {
		return c
	}
	node := p.vars[v]
	sel := 1.0
	if node.rng.Extended() {
		sel *= optimizer.FormulaSelectivity(p.est, node.rng.Rel, node.rng.FilterVar, node.rng.Filter)
	}
	if node.rt != nil {
		spec := node.rt.spec
		for _, m := range spec.Monadic {
			sel *= optimizer.TermSelectivity(p.est, node.rng.Rel, spec.Var, m)
		}
		for range spec.NestedMonadic {
			sel *= stats.DefaultSemiSel
		}
	} else {
		sel *= p.matrixSelectivity(v)
	}
	c := p.est.Card(node.rng.Rel) * sel
	p.costCards[v] = c
	return c
}

// matrixSelectivity estimates the monadic restriction the matrix puts on
// v: per conjunction mentioning v, the product of its monadic-term
// selectivities over v; across the disjunction, the maximum (a union
// bound — an element survives if any disjunct admits it). Conjunctions
// not mentioning v leave it unrestricted. Terms that are witness copies
// of extracted range-filter conjuncts are skipped — their selectivity is
// already counted through the filter, and multiplying both would square
// it.
func (p *plan) matrixSelectivity(v string) float64 {
	node := p.vars[v]
	inFilter := p.filterTermKeys(v)
	best, mentioned := 0.0, false
	for _, conj := range p.x.Matrix {
		s, hasV := 1.0, false
		for _, a := range conj {
			vars := a.Vars()
			if len(vars) != 1 || vars[0] != v {
				for _, av := range vars {
					if av == v {
						hasV = true
					}
				}
				continue
			}
			hasV = true
			if a.Cmp != nil {
				if !inFilter[a.Cmp.String()] {
					s *= optimizer.TermSelectivity(p.est, node.rng.Rel, v, a.Cmp)
				}
			} else {
				s *= stats.DefaultSemiSel
			}
		}
		if !hasV {
			return 1 // some disjunct admits every element of the range
		}
		if !mentioned || s > best {
			best, mentioned = s, true
		}
	}
	if !mentioned {
		return 1
	}
	return best
}

// filterTermKeys returns the string forms of the comparison conjuncts of
// v's range filter, renamed to v — the shape extraction's witness copies
// take in the matrix.
func (p *plan) filterTermKeys(v string) map[string]bool {
	rng := p.vars[v].rng
	if !rng.Extended() {
		return nil
	}
	keys := map[string]bool{}
	var walk func(f calculus.Formula)
	walk = func(f calculus.Formula) {
		switch g := f.(type) {
		case *calculus.And:
			for _, sub := range g.Fs {
				walk(sub)
			}
		case *calculus.Cmp:
			t := calculus.Formula(g)
			if rng.FilterVar != v {
				t = calculus.RenameVar(calculus.Clone(g), rng.FilterVar, v)
			}
			if c, ok := t.(*calculus.Cmp); ok {
				keys[c.String()] = true
			}
		}
	}
	walk(rng.Filter)
	return keys
}

func (p *plan) basePriority(v string) int {
	n := p.vars[v]
	if n.rt != nil {
		return n.rt.spec.ID
	}
	base := len(p.specRTs)
	for i := len(p.x.Prefix) - 1; i >= 0; i-- {
		if p.x.Prefix[i].Var == v {
			return base + (len(p.x.Prefix) - 1 - i)
		}
	}
	base += len(p.x.Prefix)
	for i, d := range p.x.Free {
		if d.Var == v {
			return base + i
		}
	}
	return base + len(p.x.Free)
}

// transientIndexSelThreshold gates the cost-based choice between
// probing a permanent index and building a transient one: when the
// variable's range filter keeps at most this fraction of the relation,
// a transient index over the survivors beats filtered permanent-index
// probes (see usePermIndex).
const transientIndexSelThreshold = 0.5

// usePermIndex decides, for a variable with a permanent index on the
// needed component, whether to probe it or to build a transient index
// instead. The static plan keeps the paper's rule — permanent indexes
// always win ("the first step can be omitted, if permanent indexes
// exist"). Under cost-based planning the comparison is real: with an
// extended range the permanent index covers the whole relation, every
// probe's hits must be filtered against the range list, and ordered or
// <> probes traverse entries the filter would have discarded — while
// the transient index is built during a scan the extended range
// materializes anyway (the range list forces it), so its marginal build
// cost is one Add per surviving tuple. When the filter is selective the
// transient index wins; when it keeps most of the relation, skipping
// the build and probing the permanent index wins.
func (p *plan) usePermIndex(node *varNode) bool {
	// Without strategy 1's scan fusion every structure pays its own
	// scan, so a transient build is never free — keep the permanent
	// index.
	if p.est == nil || !node.rng.Extended() || p.strat&S1 == 0 {
		return true
	}
	sel := optimizer.FormulaSelectivity(p.est, node.rng.Rel, node.rng.FilterVar, node.rng.Filter)
	return sel > transientIndexSelThreshold
}

func (p *plan) indexFor(v string, f calculus.Field) (*ixSpec, error) {
	node := p.vars[v]
	ci, ok := node.sch.ColIndex(f.Col)
	if !ok {
		return nil, fmt.Errorf("engine: relation %s has no component %s", node.sch.Name, f.Col)
	}
	key := "ix|" + v + "|" + f.Col
	if ix, ok := p.ixs[key]; ok {
		return ix, nil
	}
	if ix, ok := p.ixs["permix|"+v+"|"+f.Col]; ok {
		return ix, nil
	}
	ix := &ixSpec{key: key, v: v, colIdx: ci}
	if perm, ok := node.rel.Index(f.Col); ok && p.usePermIndex(node) {
		// Permanent access path: no build task; filter hits when the
		// range is extended.
		ix.perm = perm
		ix.filtered = node.rng.Extended()
		ix.key = "permix|" + v + "|" + f.Col
	} else {
		ix.out = collection.NewIndex(node.rng.Rel, f.Col)
	}
	p.ixs[ix.key] = ix
	return ix, nil
}

// planRangeLists decides which live variables need materialized range
// lists: universal variables (the division divisor), variables some
// conjunction leaves unconstrained (Cartesian padding), variables with
// extended ranges (the Lemma 1 adaptation must detect emptiness), and
// free variables under a constant-TRUE matrix. Everything else gets its
// references through single lists and indirect joins, so skipping the
// list can make whole scans unnecessary when permanent indexes exist.
func (p *plan) planRangeLists() {
	constTrue := p.x.Const != nil && *p.x.Const
	for _, q := range p.x.Prefix {
		if q.All || q.Range.Extended() {
			p.needRange[q.Var] = true
		}
	}
	for _, d := range p.x.Free {
		if constTrue || d.Range.Extended() {
			p.needRange[d.Var] = true
		}
	}
	for _, cp := range p.conjs {
		for _, v := range p.liveVars() {
			if !cp.consumed[v] {
				p.needRange[v] = true
			}
		}
	}
}

// publishRange stores a variable's collected range list, under the
// plan lock: jobs of other variables may concurrently consult range
// sets while this one's scan finishes.
func (p *plan) publishRange(v string, refs []value.Value) {
	p.mu.Lock()
	p.rangeLst[v] = refs
	p.mu.Unlock()
}

// rangeSet returns (building lazily, under the plan lock) the set of
// encoded references in v's range list; valid once v's scan has
// completed — which the scheduler's dependency edges guarantee for
// every prober.
func (p *plan) rangeSet(v string) map[string]struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.rangeSets[v]; ok {
		return s
	}
	s := make(map[string]struct{}, len(p.rangeLst[v]))
	for _, ref := range p.rangeLst[v] {
		s[value.EncodeKey([]value.Value{ref})] = struct{}{}
	}
	p.rangeSets[v] = s
	return s
}

func (p *plan) singleListFor(v string, atoms []optimizer.Atom) (*slSpec, error) {
	key := "sl|" + v + "|" + sigOf(atoms)
	if sl, ok := p.sls[key]; ok {
		return sl, nil
	}
	preds, err := p.compileAtoms(v, atoms)
	if err != nil {
		return nil, err
	}
	sl := &slSpec{key: key, v: v, label: sigOf(atoms), preds: preds, out: collection.NewSingleList(v)}
	if p.exec != ExecTuple {
		sl.bPreds, sl.bOK = p.compileBatchAtoms(v, atoms)
	}
	p.sls[key] = sl
	return sl, nil
}

// probeGroupFor creates (or reuses) the probe group for probing variable
// pv with the given assignments and strategy-2 predicate atoms.
func (p *plan) probeGroupFor(pv string, as []dyAssign, predAtoms []optimizer.Atom, mutual bool) (*probeGroup, error) {
	node := p.vars[pv]
	termKeys := make([]string, len(as))
	for i, a := range as {
		termKeys[i] = a.c.String()
	}
	sort.Strings(termKeys)
	key := "grp|" + pv + "|" + sigOf(predAtoms) + "|" + strings.Join(termKeys, "&")
	if grp, ok := p.groups[key]; ok {
		return grp, nil
	}
	preds, err := p.compileAtoms(pv, predAtoms)
	if err != nil {
		return nil, err
	}
	grp := &probeGroup{key: key, v: pv, preds: preds, mutual: mutual}
	if p.exec != ExecTuple {
		grp.bPreds, grp.bOK = p.compileBatchAtoms(pv, predAtoms)
	}
	for _, a := range as {
		ci, ok := node.sch.ColIndex(a.probeF.Col)
		if !ok {
			return nil, fmt.Errorf("engine: relation %s has no component %s", node.sch.Name, a.probeF.Col)
		}
		ix, err := p.indexFor(a.ixV, a.ixF)
		if err != nil {
			return nil, err
		}
		grp.probes = append(grp.probes, probeRef{
			op: a.op, probeCol: ci, index: ix,
			out: collection.NewIndirectJoin(pv, a.ixV),
		})
	}
	p.groups[key] = grp
	return grp, nil
}

// deferredJoinFor creates (or reuses) an index-index join for a term
// whose sides share one fused scan.
func (p *plan) deferredJoinFor(a dyAssign) (*deferredIJ, error) {
	key := "dij|" + a.c.String()
	for _, d := range p.deferred {
		if d.key == key {
			return d, nil
		}
	}
	lIx, err := p.indexFor(a.probeF.Var, a.probeF)
	if err != nil {
		return nil, err
	}
	rIx, err := p.indexFor(a.ixF.Var, a.ixF)
	if err != nil {
		return nil, err
	}
	d := &deferredIJ{
		key: key, lv: a.probeF.Var, rv: a.ixF.Var, op: a.c.Op,
		lIx: lIx, rIx: rIx,
		out: collection.NewIndirectJoin(a.probeF.Var, a.ixF.Var),
	}
	p.deferred = append(p.deferred, d)
	return d, nil
}

// compileAtoms compiles monadic atoms (plain or derived) over v into row
// predicates.
func (p *plan) compileAtoms(v string, atoms []optimizer.Atom) ([]rowPred, error) {
	node := p.vars[v]
	out := make([]rowPred, 0, len(atoms))
	for _, a := range atoms {
		if a.Cmp != nil {
			pr, err := compileMonadic(a.Cmp, v, node.sch)
			if err != nil {
				return nil, err
			}
			out = append(out, pr)
			continue
		}
		rt, ok := p.specRTs[a.Semi.Spec]
		if !ok {
			return nil, fmt.Errorf("engine: derived atom %s references unplanned spec", a)
		}
		pr, err := compileSemiAtom(a.Semi, node.sch, rt)
		if err != nil {
			return nil, err
		}
		out = append(out, pr)
	}
	return out, nil
}

// orderVars topologically sorts the variables by scan dependencies,
// breaking ties with the same total order assignSides consulted: the
// base priority (specs in creation order, prefix right-to-left, then
// free variables) statically, or descending effective cardinality under
// cost-based planning.
func (p *plan) orderVars() error {
	names := make([]string, 0, len(p.vars))
	for v := range p.vars {
		names = append(names, v)
	}
	sort.Slice(names, func(i, j int) bool {
		return p.scanBefore(names[i], names[j])
	})
	done := map[string]bool{}
	for len(p.order) < len(names) {
		progressed := false
		for _, v := range names {
			if done[v] {
				continue
			}
			ready := true
			for dep := range p.vars[v].deps {
				if !done[dep] {
					ready = false
					break
				}
			}
			if ready {
				p.order = append(p.order, v)
				done[v] = true
				progressed = true
			}
		}
		if !progressed {
			return fmt.Errorf("engine: cyclic scan dependencies among %v", names)
		}
	}
	return nil
}

// transDeps returns the transitive dependency closure of v.
func (p *plan) transDeps(v string) map[string]bool {
	out := map[string]bool{}
	var rec func(string)
	rec = func(u string) {
		for d := range p.vars[u].deps {
			if !out[d] {
				out[d] = true
				rec(d)
			}
		}
	}
	rec(v)
	return out
}

// buildJobs turns the ordered variables into scan jobs. Under strategy 1
// all tasks of one relation fuse into a single scan: a relation's job is
// emitted once every one of its variables has its dependencies (index
// builds and value lists it probes) satisfied by earlier jobs. When
// cross-relation dependencies make that impossible (a cycle at the
// relation level), the relation is scanned more than once as a fallback.
// Without strategy 1, every structure is built by its own scan — the
// paper's unoptimized access pattern.
func (p *plan) buildJobs() error {
	if p.strat&S1 == 0 {
		for _, v := range p.order {
			node := p.vars[v]
			for _, t := range p.tasksForVar(v) {
				p.jobs = append(p.jobs, &scanJob{rel: node.rel, vars: []string{v}, tasks: []scanTask{t}})
			}
		}
		return nil
	}
	done := map[string]bool{}
	remaining := append([]string(nil), p.order...)
	ready := func(v string) bool {
		for d := range p.vars[v].deps {
			if !done[d] {
				return false
			}
		}
		return true
	}
	emit := func(vars []string) {
		job := &scanJob{rel: p.vars[vars[0]].rel}
		for _, v := range vars {
			job.vars = append(job.vars, v)
			job.tasks = append(job.tasks, p.tasksForVar(v)...)
			done[v] = true
		}
		// A variable served entirely by permanent indexes needs no scan.
		if len(job.tasks) > 0 {
			p.jobs = append(p.jobs, job)
		}
		kept := remaining[:0]
		for _, v := range remaining {
			if !done[v] {
				kept = append(kept, v)
			}
		}
		remaining = kept
	}
	for len(remaining) > 0 {
		// Prefer the first relation (by variable order) whose pending
		// variables are all ready: its scan can be fused completely.
		emitted := false
		for _, v := range remaining {
			rel := p.vars[v].rel
			group := make([]string, 0, 2)
			allReady := true
			for _, w := range remaining {
				if p.vars[w].rel != rel {
					continue
				}
				if !ready(w) {
					allReady = false
					break
				}
				group = append(group, w)
			}
			if allReady {
				emit(group)
				emitted = true
				break
			}
		}
		if emitted {
			continue
		}
		// Relation-level cycle: emit a partial scan with whatever is
		// ready for the first ready variable's relation.
		var group []string
		var rel *relation.Relation
		for _, v := range remaining {
			if !ready(v) {
				continue
			}
			if rel == nil {
				rel = p.vars[v].rel
			}
			if p.vars[v].rel == rel {
				group = append(group, v)
			}
		}
		if len(group) == 0 {
			return fmt.Errorf("engine: cyclic scan dependencies in job scheduling")
		}
		emit(group)
	}
	return nil
}
