package engine

import (
	"context"
	"fmt"

	"pascalr/internal/sched"
	"pascalr/internal/stats"
)

// shardMinTuples is the estimated per-shard scan cardinality below
// which splitting a scan is not worth the fork/merge overhead. The
// estimator prices the decision when cost-based planning is on;
// otherwise the relation's exact length does.
const shardMinTuples = 512

// jobShardSpans decides how a job's scan splits into slot-range shards:
// nil (or a single span) means the job runs whole. A job shards only
// when every task supports shard-local accumulation and the estimated
// scan cardinality clears shardMinTuples per shard, up to one shard per
// worker. Shard boundaries balance by the statistics subsystem's slot
// density — the live-tuple counts per slot stripe — instead of raw slot
// counts, so after heavy deletions no shard inherits a dead region
// while another carries all the survivors. The split only moves
// boundaries; results and merged counters stay bit-identical to a
// serial scan regardless.
func (p *plan) jobShardSpans(job *scanJob) [][2]int {
	for _, t := range job.tasks {
		if _, ok := t.(shardableTask); !ok {
			return nil
		}
	}
	card := float64(job.rel.Len())
	if p.est != nil {
		if c := p.est.Card(job.rel.Name()); c > 1 {
			card = c
		}
	}
	// A disk-resident scan pays more per tuple, so it amortizes the
	// fork/merge overhead sooner: the backend's access-cost profile
	// scales the effective cardinality. Shard count moves boundaries
	// only — results and counters stay bit-identical either way — so
	// backend costs feeding this decision cannot perturb fingerprints.
	card *= job.rel.AccessCost().ScanTuple
	n := sched.ShardCount(card, shardMinTuples, p.par)
	if n <= 1 {
		return nil
	}
	if weights, stripe := job.rel.SlotWeights(); weights != nil {
		return sched.WeightedShards(job.rel.SlotSpan(), n, weights, stripe)
	}
	return sched.Shards(job.rel.SlotSpan(), n)
}

// runScansParallel fans the collection phase out to a sched worker
// pool. The job graph mirrors the plan's variable dependencies (an
// index- or value-list-building scan completes before any scan probing
// it starts); large shardable scans split into balanced slot-range
// shards followed by a merge job that absorbs shard results in shard
// order. Every scheduled job counts into its own sink; sinks fold into
// the execution's sink in job order after the pool drains, so the
// merged counters equal a serial run's exactly.
func (p *plan) runScansParallel(ctx context.Context) error {
	varJobs := map[string][]int{}
	for ji, job := range p.jobs {
		for _, v := range job.vars {
			varJobs[v] = append(varJobs[v], ji)
		}
	}

	// First pass: shard layout and each logical job's final sched id —
	// the id whose completion means the job's structures are ready.
	spans := make([][][2]int, len(p.jobs))
	finalID := make([]int, len(p.jobs))
	next := 0
	for ji, job := range p.jobs {
		spans[ji] = p.jobShardSpans(job)
		if n := len(spans[ji]); n > 1 {
			next += n + 1 // n shard scans + 1 merge
		} else {
			next++
		}
		finalID[ji] = next - 1
	}

	// Second pass: emit sched jobs. A logical job's dependencies are
	// the final ids of every job containing a variable its own
	// variables depend on (conservative at the var level, which also
	// covers the range lists filtered permanent-index probes consult).
	jobSinks := make([]*stats.Counters, len(p.jobs))
	sjobs := make([]sched.Job, 0, next)
	for ji := range p.jobs {
		job := p.jobs[ji]
		sink := &stats.Counters{}
		jobSinks[ji] = sink

		depSet := map[int]bool{}
		var deps []int
		for _, v := range job.vars {
			for d := range p.vars[v].deps {
				for _, dj := range varJobs[d] {
					if dj == ji {
						continue
					}
					if id := finalID[dj]; !depSet[id] {
						depSet[id] = true
						deps = append(deps, id)
					}
				}
			}
		}

		// Job spans open at emission time, so a parallel scan's span
		// includes its scheduler queue wait — deliberately: queueing is
		// part of what the trace is for.
		jsp := p.collSp.Start("scan " + job.rel.Name())
		if jsp != nil {
			p.jobSpans[ji] = jsp
		}

		if len(spans[ji]) <= 1 {
			jb := job
			sjobs = append(sjobs, sched.Job{
				Name: "scan " + jb.rel.Name(),
				Deps: deps,
				Run: func(ctx context.Context) error {
					defer jsp.End()
					return p.runScanJob(ctx, jb, sink)
				},
			})
			continue
		}
		jsp.SetInt("shards", int64(len(spans[ji])))
		mParallelShards.Add(int64(len(spans[ji])))

		shardIDs := make([]int, 0, len(spans[ji]))
		shardTasks := make([][]scanTask, len(spans[ji]))
		shardSinks := make([]*stats.Counters, len(spans[ji]))
		for si, span := range spans[ji] {
			tasks := make([]scanTask, len(job.tasks))
			for ti, t := range job.tasks {
				tasks[ti] = t.(shardableTask).shardClone()
			}
			shardTasks[si] = tasks
			shardSinks[si] = &stats.Counters{}
			jb, snk, lo, hi := job, shardSinks[si], span[0], span[1]
			shardIDs = append(shardIDs, len(sjobs))
			sjobs = append(sjobs, sched.Job{
				Name: fmt.Sprintf("scan %s [%d:%d)", jb.rel.Name(), lo, hi),
				Deps: deps,
				Run: func(ctx context.Context) error {
					ssp := jsp.Start(fmt.Sprintf("shard [%d:%d)", lo, hi))
					defer ssp.End()
					return p.scanSlotRange(ctx, jb, tasks, snk, lo, hi)
				},
			})
		}
		jb := job
		sjobs = append(sjobs, sched.Job{
			Name: "merge " + jb.rel.Name(),
			Deps: shardIDs,
			Run: func(context.Context) error {
				defer jsp.End()
				// One logical scan: the shards counted the tuples, the
				// merge counts the scan start, exactly once.
				sink.CountScan(jb.rel.Name())
				for si := range shardTasks {
					for ti, t := range jb.tasks {
						if err := t.(shardableTask).absorb(shardTasks[si][ti]); err != nil {
							return err
						}
					}
					sink.Merge(shardSinks[si])
				}
				for _, t := range jb.tasks {
					if err := t.finish(); err != nil {
						return err
					}
				}
				return nil
			},
		})
	}

	err := sched.Run(ctx, p.par, sjobs)
	// Deterministic merge: per-job sinks fold into the execution sink
	// in job order (the serial execution order), error or not.
	for _, snk := range jobSinks {
		p.st.Merge(snk)
	}
	return err
}
