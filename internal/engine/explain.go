package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pascalr/internal/value"
)

// Explain executes the plan once and reports estimated versus actual
// cardinalities per scan and per combination-phase join, so estimate
// quality — the input every cost-based decision depends on — is
// directly observable. The query runs to completion (the construction
// phase is drained to count result tuples); counters merge into the
// engine's sink as for any execution.
func (p *Plan) Explain(ctx context.Context) (string, error) {
	return p.ExplainWith(ctx, nil)
}

// ExplainWith is Explain with per-execution option overrides; see
// EvalWith.
func (p *Plan) ExplainWith(ctx context.Context, override func(*Options)) (string, error) {
	cur, pp, err := p.rowsWithPlan(ctx, override)
	if err != nil {
		return "", err
	}
	rows := 0
	for cur.Next() {
		rows++
	}
	err = cur.Err()
	cur.Close()
	if err != nil {
		return "", err
	}
	return formatExplain(pp, rows), nil
}

func formatExplain(pp *plan, rows int) string {
	var b strings.Builder
	planner := "static"
	if pp.est != nil {
		planner = "cost-based"
	}
	fmt.Fprintf(&b, "strategies: %s, planner: %s\n", pp.strat, planner)
	fmt.Fprintf(&b, "scan order: %s\n", strings.Join(pp.order, " -> "))
	batched, totalBatches := 0, int64(0)
	for _, job := range pp.jobs {
		if job.batch {
			batched++
			totalBatches += job.batches.Load()
		}
	}
	combExec := "serial"
	if pp.par > 1 && len(pp.conjs) > 1 {
		combExec = "parallel"
	}
	fmt.Fprintf(&b, "execution: %d/%d scans batched (%d batches), combination %s\n",
		batched, len(pp.jobs), totalBatches, combExec)
	b.WriteString("scans (estimated vs actual surviving tuples):\n")
	for _, v := range pp.order {
		node := pp.vars[v]
		est := "-"
		if pp.est != nil {
			est = fmt.Sprintf("%.1f", pp.estCard(v))
		}
		actual, how := pp.actualCard(v)
		fmt.Fprintf(&b, "  %-12s IN %-12s est %-8s actual %d (%s)\n", v, node.rng.Rel, est, actual, how)
	}
	if len(pp.joinLog) > 0 {
		b.WriteString("joins (estimated vs actual output):\n")
		for _, j := range pp.joinLog {
			est := "-"
			if j.est >= 0 {
				est = fmt.Sprintf("%.1f", j.est)
			}
			fmt.Fprintf(&b, "  (%s) est %-8s actual %d\n", j.vars, est, j.got)
		}
	}
	if structs := pp.st.Structures; len(structs) > 0 {
		b.WriteString("structures:\n")
		lines := make([]string, 0, len(structs))
		for _, s := range structs {
			lines = append(lines, fmt.Sprintf("  %-24s %-13s size=%d", s.Name, s.Kind, s.Size))
		}
		sort.Strings(lines)
		b.WriteString(strings.Join(lines, "\n"))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "result: %d tuples\n", rows)
	return b.String()
}

// annotateScanSpans stamps each scan job's trace span with the same
// estimated and actual cardinalities EXPLAIN reports, per variable the
// job scanned for. Called once after the collection phase materialized
// the structures actualCard reads.
func (pp *plan) annotateScanSpans() {
	for ji, job := range pp.jobs {
		sp := pp.jobSpans[ji]
		if sp == nil {
			continue
		}
		if job.batch {
			sp.SetAttr("path", "batch")
			sp.SetInt("batches", job.batches.Load())
		} else {
			sp.SetAttr("path", "tuple")
		}
		for _, v := range job.vars {
			if pp.est != nil {
				sp.SetFloat("est."+v, pp.estCard(v))
			}
			actual, how := pp.actualCard(v)
			sp.SetInt("actual."+v, int64(actual))
			sp.SetAttr("via."+v, how)
		}
	}
}

// actualCard reports the variable's observed effective cardinality and
// which structure it was read from: the materialized range list when
// one exists, a single list built over the variable, the distinct
// references the variable contributed to its indirect joins, or — when
// the variable's restriction never materialized on its own side — the
// base relation's size.
func (pp *plan) actualCard(v string) (int, string) {
	if pp.needRange[v] {
		return len(pp.rangeLst[v]), "range list"
	}
	for _, key := range sortedKeys(pp.sls) {
		if sl := pp.sls[key]; sl.v == v {
			return sl.out.Len(), "single list"
		}
	}
	if n, ok := pp.distinctIJRefs(v); ok {
		return n, "indirect joins"
	}
	return pp.vars[v].rel.Len(), "relation size"
}

// distinctIJRefs counts the distinct references of v across the
// indirect joins it participates in.
func (pp *plan) distinctIJRefs(v string) (int, bool) {
	seen := map[string]struct{}{}
	found := false
	count := func(side int, pairs [][2]value.Value) {
		found = true
		for _, pr := range pairs {
			seen[value.EncodeKey([]value.Value{pr[side]})] = struct{}{}
		}
	}
	for _, cp := range pp.conjs {
		for i, ij := range cp.ijs {
			if cp.ijNames[i][0] == v {
				count(0, ij.Pairs())
			} else if cp.ijNames[i][1] == v {
				count(1, ij.Pairs())
			}
		}
	}
	return len(seen), found
}
