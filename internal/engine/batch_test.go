package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
	"pascalr/internal/value"
	"pascalr/internal/workload"
)

// setBatchSize shrinks the batch capacity for the duration of a test so
// batch-boundary and tail-bitmap edge cases get exercised with small
// relations, restoring the default afterwards.
func setBatchSize(t *testing.T, n int) {
	t.Helper()
	old := batchSize
	batchSize = n
	t.Cleanup(func() { batchSize = old })
}

// evalBoth runs one selection on the vectorized path and on the forced
// tuple path with identical options and asserts bit-identical results
// and counter fingerprints. It returns the batch run's result.
func evalBoth(t *testing.T, db *relation.DB, sel *calculus.Selection, opts Options) *relation.Relation {
	t.Helper()
	checked, info, err := calculus.Check(sel, db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	stBatch := &stats.Counters{}
	opts.Exec = ExecAuto
	gotBatch, err := New(db, stBatch).Eval(ctx, checked, info, opts)
	if err != nil {
		t.Fatalf("batch path: %v", err)
	}
	stTuple := &stats.Counters{}
	opts.Exec = ExecTuple
	gotTuple, err := New(db, stTuple).Eval(ctx, checked, info, opts)
	if err != nil {
		t.Fatalf("tuple path: %v", err)
	}
	if bk, tk := resultKey(gotBatch), resultKey(gotTuple); bk != tk {
		t.Fatalf("batch result (%d rows) != tuple result (%d rows)", gotBatch.Len(), gotTuple.Len())
	}
	if bf, tf := stBatch.Fingerprint(), stTuple.Fingerprint(); bf != tf {
		t.Fatalf("counter fingerprints diverge\nbatch: %s\ntuple: %s", bf, tf)
	}
	return gotBatch
}

// empnoSelection selects employee names by a single comparison on the
// unique employee number — the shape whose selection vector density is
// directly controlled by op and the constant.
func empnoSelection(op value.CmpOp, n int64) *calculus.Selection {
	return &calculus.Selection{
		Proj: []calculus.Field{{Var: "e", Col: "ename"}},
		Free: []calculus.Decl{{Var: "e", Range: &calculus.RangeExpr{Rel: "employees"}}},
		Pred: &calculus.Cmp{L: calculus.Field{Var: "e", Col: "enr"}, Op: op, R: calculus.Const{Val: value.Int(n)}},
	}
}

// TestBatchSelectionVectorDensityExtremes pins the all-one and all-zero
// selection vector cases: a predicate every row passes, one no row
// passes, and a one-row needle — across batch sizes that land the
// relation on, under, and over word and batch boundaries.
func TestBatchSelectionVectorDensityExtremes(t *testing.T) {
	db := workload.MustUniversity(workload.DefaultConfig(70)) // 70 rows: crosses one 64-bit word
	for _, bs := range []int{1, 3, 64, 70, 1024} {
		bs := bs
		t.Run(fmt.Sprintf("bs%d", bs), func(t *testing.T) {
			setBatchSize(t, bs)
			allOne := evalBoth(t, db, empnoSelection(value.OpGe, 0), Options{Strategies: AllStrategies})
			if allOne.Len() != db.MustRelation("employees").Len() {
				t.Fatalf("all-one selection kept %d of %d rows", allOne.Len(), db.MustRelation("employees").Len())
			}
			allZero := evalBoth(t, db, empnoSelection(value.OpLt, 0), Options{Strategies: AllStrategies})
			if allZero.Len() != 0 {
				t.Fatalf("all-zero selection kept %d rows", allZero.Len())
			}
			needle := evalBoth(t, db, empnoSelection(value.OpEq, 1), Options{Strategies: AllStrategies})
			if needle.Len() != 1 {
				t.Fatalf("needle selection kept %d rows, want 1", needle.Len())
			}
		})
	}
}

// TestBatchEmptyRelations runs the differential pair against empty base
// relations: zero batches must flow, and results must stay identical.
func TestBatchEmptyRelations(t *testing.T) {
	setBatchSize(t, 7)
	db := relation.NewDB()
	if err := workload.DefineSchema(db, workload.DefaultConfig(10)); err != nil {
		t.Fatal(err)
	}
	res := evalBoth(t, db, empnoSelection(value.OpGe, 0), Options{Strategies: AllStrategies})
	if res.Len() != 0 {
		t.Fatalf("empty relation produced %d rows", res.Len())
	}
	res = evalBoth(t, db, workload.SampleSelection(), Options{Strategies: AllStrategies})
	if res.Len() != 0 {
		t.Fatalf("empty university produced %d rows", res.Len())
	}
}

// TestBatchBoundaryMatrix sweeps the paper's sample queries across odd
// batch sizes (including sizes that split every quantified scan at
// non-multiple-of-64 offsets) and every strategy rung, serial and
// parallel — the bit-identity contract under boundary stress.
func TestBatchBoundaryMatrix(t *testing.T) {
	db := workload.MustUniversity(workload.DefaultConfig(17))
	sels := []*calculus.Selection{
		workload.SampleSelection(),
		workload.SubexprSelection(),
		workload.DisjunctiveSelection(),
		workload.JoinHeavySelection(),
	}
	for _, bs := range []int{3, 65} {
		for _, sel := range sels {
			for _, strat := range []Strategy{0, S1 | S2, AllStrategies} {
				for _, par := range []int{1, 4} {
					setBatchSize(t, bs)
					evalBoth(t, db, sel, Options{Strategies: strat, Parallelism: par})
				}
			}
		}
	}
}

// TestBatchCursorStreamingDedup streams a compiled plan's rows through
// the cursor with a batch size that fractures every scan, checking the
// streamed multiset (including construction-phase dedup) against the
// tuple path's materialized result.
func TestBatchCursorStreamingDedup(t *testing.T) {
	setBatchSize(t, 5)
	db := workload.MustUniversity(workload.DefaultConfig(40))
	checked, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	plan, err := New(db, nil).Compile(checked, info, Options{Strategies: AllStrategies})
	if err != nil {
		t.Fatal(err)
	}
	cur, err := plan.Rows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	seen := map[string]bool{}
	for cur.Next() {
		k := value.EncodeKey(cur.Row())
		if seen[k] {
			t.Fatalf("cursor yielded duplicate row %q across batch boundaries", k)
		}
		seen[k] = true
		keys = append(keys, k)
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	sort.Strings(keys)

	tup, err := New(db, nil).Eval(ctx, checked, info, Options{Strategies: AllStrategies, Exec: ExecTuple})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(keys, "|"), resultKey(tup); got != want {
		t.Fatalf("streamed batch rows != tuple-path result\nbatch: %s\ntuple: %s", got, want)
	}
}

// TestBatchJobsActuallyBatch guards the degrade seam from silently
// pinning everything to the tuple path: a plain monadic query must
// compile every scan job to batch form under ExecAuto and none under
// ExecTuple.
func TestBatchJobsActuallyBatch(t *testing.T) {
	db := workload.MustUniversity(workload.DefaultConfig(20))
	checked, _, err := calculus.Check(empnoSelection(value.OpGe, 0), db.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ExecMode{ExecAuto, ExecTuple} {
		e := New(db, nil)
		opts := Options{Strategies: AllStrategies, Exec: mode}
		x, err := e.prepare(checked, opts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := buildPlan(x, db, &stats.Counters{}, opts.Strategies, planEstimator(opts), 1, mode)
		if err != nil {
			t.Fatal(err)
		}
		for _, job := range p.jobs {
			if want := mode == ExecAuto; job.batch != want {
				t.Fatalf("mode %s: job over %s batch=%v, want %v", mode, job.rel.Name(), job.batch, want)
			}
		}
	}
}
