package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"pascalr/internal/calculus"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
	"pascalr/internal/workload"
)

type workloadFixture struct {
	db   *relation.DB
	sel  *calculus.Selection
	info *calculus.Info
}

// parallelDB builds a university database large enough that every
// relation scan clears the shard threshold, so cancellation and leak
// tests actually have shard workers in flight.
func parallelDB(t testing.TB, scale int) (*workloadFixture, error) {
	t.Helper()
	db := workload.MustUniversity(workload.DefaultConfig(scale))
	checked, info, err := calculus.Check(workload.SampleSelection(), db.Catalog())
	if err != nil {
		return nil, err
	}
	return &workloadFixture{db: db, sel: checked, info: info}, nil
}

// TestParallelismOneBitIdentical runs the strategy ladder with
// Parallelism(1) against the default serial options and requires
// byte-identical results and counter fingerprints — n=1 is the paper's
// serial schedule, not a one-worker simulation of the parallel one.
func TestParallelismOneBitIdentical(t *testing.T) {
	f, err := parallelDB(t, 20)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, strat := range []Strategy{0, S1, S1 | S2, AllStrategies, AllStrategies | SCNF} {
		stDefault := &stats.Counters{}
		resDefault, err := New(f.db, stDefault).Eval(ctx, f.sel, f.info, Options{Strategies: strat})
		if err != nil {
			t.Fatal(err)
		}
		stOne := &stats.Counters{}
		resOne, err := New(f.db, stOne).Eval(ctx, f.sel, f.info, Options{Strategies: strat, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if relKey(resDefault) != relKey(resOne) {
			t.Fatalf("%s: Parallelism(1) result differs from default serial", strat)
		}
		if stDefault.Fingerprint() != stOne.Fingerprint() {
			t.Fatalf("%s: Parallelism(1) counters differ from default serial\n%s\nvs\n%s",
				strat, stDefault.Fingerprint(), stOne.Fingerprint())
		}
	}
}

// TestParallelCancellation sweeps countdown contexts through a parallel
// evaluation — cancellation can strike while shard workers are in
// flight at any checkpoint — and requires context.Canceled (never a
// wrapped or different error), a completed run once the budget
// suffices, and no goroutines left behind.
func TestParallelCancellation(t *testing.T) {
	f, err := parallelDB(t, 40)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(f.db, nil)
	opts := Options{Strategies: AllStrategies, Parallelism: 4}

	before := runtime.NumGoroutine()
	sawSuccess := false
	for n := int64(0); n < 400; n++ {
		ctx := newCountdownCtx(n)
		res, err := eng.Eval(ctx, f.sel, f.info, opts)
		if err == nil {
			sawSuccess = true
			if res == nil {
				t.Fatalf("countdown %d: nil result without error", n)
			}
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("countdown %d: got %v, want context.Canceled", n, err)
		}
	}
	if !sawSuccess {
		t.Fatal("evaluation never completed; countdown budget too small to cover all checkpoints")
	}
	waitNoExtraGoroutines(t, before)
}

// TestParallelCursorCloseMidStream closes a cursor after one row while
// the plan ran with parallel workers: the scheduler must already have
// drained (Rows returns only after the collection pool exits), so
// closing mid-stream leaks nothing.
func TestParallelCursorCloseMidStream(t *testing.T) {
	f, err := parallelDB(t, 40)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	plan, err := New(f.db, nil).Compile(f.sel, f.info, Options{Strategies: AllStrategies, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := plan.Rows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("first Next failed: %v", cur.Err())
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	cancel()
	waitNoExtraGoroutines(t, before)
}

// TestParallelCancelWhileWorkersInFlight cancels a context from a
// second goroutine while shard workers are mid-scan and checks the
// evaluation returns ctx.Err() and every scheduler goroutine exits.
func TestParallelCancelWhileWorkersInFlight(t *testing.T) {
	f, err := parallelDB(t, 60)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(f.db, nil)
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Duration(round) * 100 * time.Microsecond)
			cancel()
		}()
		_, err := eng.Eval(ctx, f.sel, f.info, Options{Strategies: AllStrategies, Parallelism: 8})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: got %v, want nil or context.Canceled", round, err)
		}
		cancel()
	}
	waitNoExtraGoroutines(t, before)
}

// waitNoExtraGoroutines lets asynchronous teardown settle, then
// requires the goroutine count back at (or below) the baseline.
func waitNoExtraGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}
