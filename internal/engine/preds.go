package engine

import (
	"fmt"

	"pascalr/internal/calculus"
	"pascalr/internal/collection"
	"pascalr/internal/optimizer"
	"pascalr/internal/schema"
	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// rowPred tests one element (tuple) of a relation during a scan,
// counting comparisons into the scanning worker's sink — predicates are
// compiled once per plan but evaluated by per-job (and per-shard)
// workers, so the sink travels with the call, not the closure.
type rowPred func(tuple []value.Value, st *stats.Counters) (bool, error)

// getter extracts an operand value from the scanned tuple.
type getter func(tuple []value.Value) value.Value

func compileOperand(o calculus.Operand, v string, sch *schema.RelSchema) (getter, error) {
	switch op := o.(type) {
	case calculus.Const:
		val := op.Val
		return func([]value.Value) value.Value { return val }, nil
	case calculus.Field:
		if op.Var != v {
			return nil, fmt.Errorf("engine: operand %s is not over variable %s", op, v)
		}
		ci, ok := sch.ColIndex(op.Col)
		if !ok {
			return nil, fmt.Errorf("engine: relation %s has no component %s", sch.Name, op.Col)
		}
		return func(tuple []value.Value) value.Value { return tuple[ci] }, nil
	default:
		return nil, fmt.Errorf("engine: unresolved operand %s", o)
	}
}

// compileMonadic compiles a monadic join term over v into a row
// predicate.
func compileMonadic(c *calculus.Cmp, v string, sch *schema.RelSchema) (rowPred, error) {
	getL, err := compileOperand(c.L, v, sch)
	if err != nil {
		return nil, err
	}
	getR, err := compileOperand(c.R, v, sch)
	if err != nil {
		return nil, err
	}
	op := c.Op
	return func(tuple []value.Value, st *stats.Counters) (bool, error) {
		st.CountComparisons(1)
		return op.Apply(getL(tuple), getR(tuple))
	}, nil
}

// compileFilter compiles a (quantifier-free) range filter formula over
// the filter variable into a row predicate.
func compileFilter(f calculus.Formula, fv string, sch *schema.RelSchema) (rowPred, error) {
	switch g := f.(type) {
	case nil:
		return nil, fmt.Errorf("engine: nil filter formula")
	case *calculus.Lit:
		val := g.Val
		return func([]value.Value, *stats.Counters) (bool, error) { return val, nil }, nil
	case *calculus.Cmp:
		return compileMonadic(g, fv, sch)
	case *calculus.Not:
		sub, err := compileFilter(g.F, fv, sch)
		if err != nil {
			return nil, err
		}
		return func(tuple []value.Value, st *stats.Counters) (bool, error) {
			ok, err := sub(tuple, st)
			return !ok, err
		}, nil
	case *calculus.And:
		subs, err := compileFilters(g.Fs, fv, sch)
		if err != nil {
			return nil, err
		}
		return func(tuple []value.Value, st *stats.Counters) (bool, error) {
			for _, s := range subs {
				ok, err := s(tuple, st)
				if err != nil || !ok {
					return false, err
				}
			}
			return true, nil
		}, nil
	case *calculus.Or:
		subs, err := compileFilters(g.Fs, fv, sch)
		if err != nil {
			return nil, err
		}
		return func(tuple []value.Value, st *stats.Counters) (bool, error) {
			for _, s := range subs {
				ok, err := s(tuple, st)
				if err != nil || ok {
					return ok, err
				}
			}
			return false, nil
		}, nil
	default:
		return nil, fmt.Errorf("engine: quantifier inside range filter")
	}
}

func compileFilters(fs []calculus.Formula, fv string, sch *schema.RelSchema) ([]rowPred, error) {
	out := make([]rowPred, len(fs))
	for i, f := range fs {
		p, err := compileFilter(f, fv, sch)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// rangeFilterPred compiles a range expression's filter for elements of
// the variable v (the filter variable is renamed to v implicitly, since
// both denote the scanned tuple). Returns nil when the range has no
// filter.
func rangeFilterPred(r *calculus.RangeExpr, sch *schema.RelSchema) (rowPred, error) {
	if !r.Extended() {
		return nil, nil
	}
	return compileFilter(r.Filter, r.FilterVar, sch)
}

// specRuntime holds the execution state of one strategy-4 spec: the
// value list (or tuple list for multi-term subformulas) built while
// scanning the eliminated variable's range, and the derived predicate
// resolved from it.
type specRuntime struct {
	spec *optimizer.SemiSpec

	// Collection state.
	vl       *collection.ValueList // single dyadic term
	tuples   [][]value.Value       // multiple dyadic terms: distinct projected vn tuples
	tupleSet map[string]struct{}
	total    int // elements of the range (after range filter)
	monOK    int // elements additionally satisfying the monadic terms

	// Results, valid after finish().
	resolved bool // constant outcome known
	constVal bool
	pred     collection.QuantPred // single-dyadic predicate over the vm component
}

func newSpecRuntime(spec *optimizer.SemiSpec) *specRuntime {
	rt := &specRuntime{spec: spec}
	if len(spec.Dyadic) == 1 {
		rt.vl = collection.NewValueList()
	} else if len(spec.Dyadic) > 1 {
		rt.tupleSet = make(map[string]struct{})
	}
	return rt
}

// add processes one element of the eliminated variable's range during
// the collection scan. monPassed reports whether the element satisfied
// the spec's monadic (and nested) predicates.
func (rt *specRuntime) add(tuple []value.Value, monPassed bool, dyCols []int) {
	rt.total++
	if monPassed {
		rt.monOK++
	}
	// SOME collects only filtered elements; ALL collects the whole range
	// (the monadic terms act as a global condition, counted separately).
	if !rt.spec.All && !monPassed {
		return
	}
	switch {
	case rt.vl != nil:
		rt.vl.Add(tuple[dyCols[0]])
	case rt.tupleSet != nil:
		proj := make([]value.Value, len(dyCols))
		for i, ci := range dyCols {
			proj[i] = tuple[ci]
		}
		k := value.EncodeKey(proj)
		if _, dup := rt.tupleSet[k]; !dup {
			rt.tupleSet[k] = struct{}{}
			rt.tuples = append(rt.tuples, proj)
		}
	}
}

// merge folds a shard-local runtime into rt, in shard order: counters
// add up, and the value/tuple lists interleave exactly as one serial
// scan would have built them (first occurrence wins the dedup, shards
// cover consecutive slot ranges). Must run before finish.
func (rt *specRuntime) merge(o *specRuntime) {
	rt.total += o.total
	rt.monOK += o.monOK
	switch {
	case rt.vl != nil && o.vl != nil:
		for _, v := range o.vl.Values() {
			rt.vl.Add(v)
		}
	case rt.tupleSet != nil && o.tupleSet != nil:
		for _, proj := range o.tuples {
			k := value.EncodeKey(proj)
			if _, dup := rt.tupleSet[k]; !dup {
				rt.tupleSet[k] = struct{}{}
				rt.tuples = append(rt.tuples, proj)
			}
		}
	}
}

// finish resolves the derived predicate once the eliminated variable's
// range has been fully scanned.
func (rt *specRuntime) finish() error {
	s := rt.spec
	if s.All {
		// ALL vn (mon ∧ dy) = (ALL vn mon) AND (ALL vn dy). The first
		// factor is a constant; over an empty range both factors are
		// vacuously true (Lemma 1).
		if rt.monOK != rt.total {
			rt.resolved, rt.constVal = true, false
			return nil
		}
		if s.ConstOnly() || rt.total == 0 {
			rt.resolved, rt.constVal = true, true
			return nil
		}
	} else {
		// SOME vn (mon ∧ dy): with no qualifying element the atom is
		// false; with no dyadic terms it is simply "a qualifying element
		// exists".
		qualifying := rt.monOK
		if s.ConstOnly() {
			rt.resolved, rt.constVal = true, qualifying > 0
			return nil
		}
		if qualifying == 0 {
			rt.resolved, rt.constVal = true, false
			return nil
		}
	}
	if rt.vl != nil {
		p, err := collection.MakeQuantPred(rt.vl, s.Dyadic[0].Op, s.All)
		if err != nil {
			return err
		}
		rt.pred = p
	}
	return nil
}

// Size reports how many values the resolved predicate stores — the
// paper's section 4.4 storage measure.
func (rt *specRuntime) Size() int {
	switch {
	case rt.resolved:
		return 0
	case rt.pred != nil:
		return rt.pred.Size()
	default:
		return len(rt.tuples)
	}
}

// compileSemiAtom compiles a derived atom over the remaining variable vm
// into a row predicate against vm's relation schema.
func compileSemiAtom(sa *optimizer.SemiAtom, sch *schema.RelSchema, rt *specRuntime) (rowPred, error) {
	if sa.Spec.ConstOnly() {
		return func([]value.Value, *stats.Counters) (bool, error) {
			if !rt.resolved {
				return false, fmt.Errorf("engine: spec %d used before its scan finished", sa.Spec.ID)
			}
			return rt.constVal, nil
		}, nil
	}
	cols := make([]int, len(sa.Spec.Dyadic))
	for i, d := range sa.Spec.Dyadic {
		ci, ok := sch.ColIndex(d.VmCol)
		if !ok {
			return nil, fmt.Errorf("engine: relation %s has no component %s", sch.Name, d.VmCol)
		}
		cols[i] = ci
	}
	ops := make([]value.CmpOp, len(sa.Spec.Dyadic))
	for i, d := range sa.Spec.Dyadic {
		ops[i] = d.Op
	}
	all := sa.Spec.All
	return func(tuple []value.Value, st *stats.Counters) (bool, error) {
		if rt.resolved {
			return rt.constVal, nil
		}
		if rt.pred != nil {
			st.CountComparisons(1)
			return rt.pred.Test(tuple[cols[0]]), nil
		}
		// General tuple-list evaluation for multi-term subformulas.
		for _, vnTup := range rt.tuples {
			match := true
			for i := range ops {
				st.CountComparisons(1)
				ok, err := ops[i].Apply(tuple[cols[i]], vnTup[i])
				if err != nil {
					return false, err
				}
				if !ok {
					match = false
					break
				}
			}
			if all && !match {
				return false, nil
			}
			if !all && match {
				return true, nil
			}
		}
		return all, nil
	}, nil
}
