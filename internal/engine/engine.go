// Package engine is the PASCAL/R query evaluation system: the
// phase-structured algorithm of section 3.3 of the paper (collection,
// combination, construction) driven by the standardization of section 2
// and the four optimization strategies of section 4.
//
// Evaluation proceeds as follows. The checked selection is standardized
// into prenex/DNF form (assuming non-empty ranges); strategy 3 extracts
// monadic terms into extended range expressions; strategy 4 eliminates
// eligible quantifiers into collection-phase value lists. The physical
// plan schedules base-relation scans — one per relation under strategy
// 1, one per intermediate structure otherwise — and runs the collection
// phase. If any live range turns out empty, the standard form is adapted
// per Lemma 1 and planning repeats ("the compiler assumes that all range
// relations are non-empty but provides information to adapt the standard
// form at runtime if necessary"). The combination phase then joins the
// collected reference structures into n-tuples per conjunction, unions
// the disjunction, and evaluates quantifiers right-to-left (projection
// for SOME, division for ALL). The construction phase dereferences the
// surviving free-variable references and projects the component
// selection.
package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/normalize"
	"pascalr/internal/obs"
	"pascalr/internal/optimizer"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
)

// Strategy is a bit set of the paper's optimization strategies.
type Strategy uint8

// The four strategies of section 4, plus the CNF range extension the
// paper proposes as future work in section 4.3.
const (
	S1   Strategy = 1 << iota // parallel evaluation: one scan per relation
	S2                        // one-step evaluation of nested subexpressions
	S3                        // extended range expressions
	S4                        // quantifier evaluation in the collection phase
	SCNF                      // conjunctive-normal-form range extension (4.3 outlook)
)

// AllStrategies enables the paper's four strategies (SCNF, the stated
// future-work extension, is opted into separately).
const AllStrategies = S1 | S2 | S3 | S4

// String renders the strategy set, e.g. "S1+S3".
func (s Strategy) String() string {
	if s == 0 {
		return "S0"
	}
	var parts []string
	for i, name := range []string{"S1", "S2", "S3", "S4", "SCNF"} {
		if s&(1<<i) != 0 {
			parts = append(parts, name)
		}
	}
	return strings.Join(parts, "+")
}

// Options configures one evaluation.
type Options struct {
	// Strategies selects the optimizations; zero means the unoptimized
	// standard algorithm.
	Strategies Strategy
	// MaxConjunctions bounds DNF growth (0: normalize's default).
	MaxConjunctions int
	// MaxRefTuples bounds the reference tuples materialized by the
	// combination phase (0: unlimited).
	MaxRefTuples int64
	// CostBased drives scan ordering, probe/index side selection,
	// combination-phase join ordering, and the optimizer's extraction and
	// elimination decisions from cardinality estimates instead of the
	// static priorities. False reproduces the paper's static plan.
	CostBased bool
	// Estimator supplies table statistics for cost-based planning; when
	// nil and CostBased is set, Eval uses the database's live statistics
	// (incrementally maintained, no analyze pass).
	Estimator *stats.Estimator
	// Parallelism is the worker budget for the collection phase
	// (independent scan jobs on up to this many goroutines, large scans
	// split into balanced slot-range shards — see internal/sched) and
	// the combination phase (per-conjunction greedy joins and deferred
	// index-index joins as independent jobs). Values below 2 run the
	// paper's serial schedule on the calling goroutine, with
	// bit-identical results and counters; higher values produce the same
	// results and the same merged counters, faster.
	Parallelism int
	// Exec selects the collection-phase execution path. The zero value
	// (ExecAuto) vectorizes every scan whose tasks compile to bulk
	// batch form; ExecTuple forces the tuple-at-a-time path. Both paths
	// produce bit-identical results and counter fingerprints.
	Exec ExecMode
	// maxAdaptations guards the adaptation loop; set by Eval.
	maxAdaptations int
}

// ExecMode selects between the vectorized columnar collection path and
// the legacy tuple-at-a-time path.
type ExecMode int

const (
	// ExecAuto (the default) runs batched columnar scans wherever every
	// task of a scan job compiles to bulk form, degrading per job to
	// tuple-at-a-time otherwise.
	ExecAuto ExecMode = iota
	// ExecTuple forces the tuple-at-a-time path everywhere — the
	// differential baseline for the batch path.
	ExecTuple
)

func (m ExecMode) String() string {
	if m == ExecTuple {
		return "tuple"
	}
	return "auto"
}

// parallelism normalizes the worker budget: at least one.
func parallelism(opts Options) int {
	if opts.Parallelism < 1 {
		return 1
	}
	return opts.Parallelism
}

// Engine evaluates selections against one database. Engines are safe
// for concurrent use: every execution counts into a private sink that
// merges into the engine's cumulative sink (under stMu) on completion,
// and executions hold the database's read lock during their collection
// phase, so they are race-free against relation writers.
type Engine struct {
	db   *relation.DB
	stMu sync.Mutex
	st   *stats.Counters // caller's sink; may be nil
}

// New creates an engine. Counters, if non-nil, accumulate across
// evaluations.
func New(db *relation.DB, st *stats.Counters) *Engine {
	return &Engine{db: db, st: st}
}

// mergeStats folds one execution's counters into the engine's
// cumulative sink.
func (e *Engine) mergeStats(execSt *stats.Counters) {
	if e.st == nil {
		return
	}
	e.stMu.Lock()
	e.st.Merge(execSt)
	e.stMu.Unlock()
}

// Stats runs f with the engine's cumulative counter sink while holding
// the merge lock, so snapshots and resets cannot race with completing
// executions. With no sink attached, f receives a throwaway empty
// sink.
func (e *Engine) Stats(f func(*stats.Counters)) {
	e.stMu.Lock()
	defer e.stMu.Unlock()
	st := e.st
	if st == nil {
		st = &stats.Counters{}
	}
	f(st)
}

// Eval compiles and executes a checked selection (from calculus.Check)
// in one shot and returns the result relation. Callers that re-execute
// the same selection should Compile once and reuse the returned Plan.
func (e *Engine) Eval(ctx context.Context, sel *calculus.Selection, info *calculus.Info, opts Options) (*relation.Relation, error) {
	p, err := e.Compile(sel, info, opts)
	if err != nil {
		return nil, err
	}
	return p.Eval(ctx)
}

// prepare folds empty ranges out of the original formula (Lemma 1: the
// prenex transformation is only valid for non-empty ranges, so the
// adaptation must happen before standardization — this is the paper's
// Example 2.2 caveat, where the unadapted normal form would return all
// employees instead of the professors), then runs standardization and
// the logical strategies (3 and 4).
func (e *Engine) prepare(sel *calculus.Selection, opts Options) (*optimizer.XForm, error) {
	return e.prepareFolded(sel, normalize.Fold(sel.Pred, baseline.Emptiness(e.db)), opts)
}

// prepareFolded is prepare for a predicate already adapted to the
// current empty ranges; Plan revalidation computes the fold itself to
// detect staleness, then hands it over.
func (e *Engine) prepareFolded(sel *calculus.Selection, folded calculus.Formula, opts Options) (*optimizer.XForm, error) {
	return e.prepareFoldedCtx(context.Background(), sel, folded, opts)
}

func (e *Engine) prepareFoldedCtx(ctx context.Context, sel *calculus.Selection, folded calculus.Formula, opts Options) (*optimizer.XForm, error) {
	sp := obs.SpanFrom(ctx)
	sel = &calculus.Selection{Proj: sel.Proj, Free: sel.Free, Pred: folded}
	ssp := sp.Start("standardize")
	sf, err := normalize.Standardize(sel, normalize.Options{MaxConjunctions: opts.MaxConjunctions})
	ssp.End()
	if err != nil {
		return nil, err
	}
	osp := sp.Start("optimize")
	defer osp.End()
	// The CNF extension runs first: its free-variable rule ("every
	// conjunction restricts the variable") must judge the original
	// matrix. Plain extraction may remove whole disjuncts (the universal
	// rule), and a disjunct without the restriction is exactly what makes
	// the narrowing unsound.
	if opts.Strategies&SCNF != 0 {
		sf, _ = optimizer.ExtractRangesCNF(sf)
	}
	cm := costModel(opts)
	if opts.Strategies&S3 != 0 {
		sf, _ = optimizer.ExtractRangesCost(sf, cm)
	}
	x := optimizer.FromStandardForm(sf)
	if opts.Strategies&S4 != 0 {
		optimizer.EliminateQuantifiersCost(x, cm)
	}
	return x, nil
}

// ensureEstimator bootstraps cost-based planning: when the caller asked
// for it without supplying statistics, take the database's live
// statistics (incrementally maintained by the mutators — no analyze
// rescans), so Eval and Explain always plan from the same statistics.
func (e *Engine) ensureEstimator(opts *Options) {
	if opts.CostBased && opts.Estimator == nil {
		opts.Estimator = e.db.Estimator()
	}
}

// planEstimator returns the estimator the physical planner should use;
// nil keeps the static ordering.
func planEstimator(opts Options) *stats.Estimator {
	if !opts.CostBased {
		return nil
	}
	return opts.Estimator
}

// costModel adapts the options' estimator into the optimizer's cost
// model; nil (the static plan) when cost-based planning is off.
func costModel(opts Options) optimizer.CostModel {
	if !opts.CostBased || opts.Estimator == nil {
		return nil
	}
	return opts.Estimator
}

// collectWithAdaptation plans and runs the collection phase, re-adapting
// and re-planning whenever a live range turns out to be empty (Lemma 1).
func (e *Engine) collectWithAdaptation(ctx context.Context, x *optimizer.XForm, st *stats.Counters, opts Options) (*plan, error) {
	for attempt := 0; ; attempt++ {
		if attempt > opts.maxAdaptations {
			return nil, fmt.Errorf("engine: adaptation loop did not converge")
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p, err := buildPlan(x, e.db, st, opts.Strategies, planEstimator(opts), parallelism(opts), opts.Exec)
		if err != nil {
			return nil, err
		}
		if sp := obs.SpanFrom(ctx); sp != nil {
			p.collSp = sp.Start("collection")
			if attempt > 0 {
				p.collSp.SetInt("adaptation", int64(attempt))
			}
			p.jobSpans = make([]*obs.Span, len(p.jobs))
		}
		err = p.runScans(ctx)
		p.collSp.End()
		if err != nil {
			return nil, err
		}
		empties := map[string]bool{}
		for _, v := range p.emptyLiveVars() {
			if !p.vars[v].free {
				empties[v] = true
			}
		}
		if len(empties) == 0 {
			return p, nil
		}
		adaptXForm(x, empties)
	}
}

// adaptXForm applies the Lemma 1 rules to the prenex form when prefix
// ranges turn out empty at run time. After prepare's pre-fold, the only
// way a prefix range can be empty is through an extended range created
// by strategy 3, and the adaptation undoes exactly the extraction step
// that the emptiness invalidated:
//
//   - SOME over an empty extended range falsifies every conjunction
//     containing the variable (each needs a witness satisfying the
//     extracted filter), restoring the surviving disjuncts that the
//     rule-2 rewrap assumed;
//   - ALL over an empty extended range is vacuously TRUE, making the
//     whole remaining subformula TRUE and discarding the inner prefix.
//
// The existential drops run first: they are matrix-local and valid
// regardless of the other ranges, whereas a universal truncation erases
// the matrix the drops need to inspect.
func adaptXForm(x *optimizer.XForm, empty map[string]bool) {
	for i := len(x.Prefix) - 1; i >= 0; i-- {
		q := x.Prefix[i]
		if !empty[q.Var] || q.All {
			continue
		}
		// Existential: drop the conjunctions mentioning the variable.
		if x.Const != nil {
			if *x.Const {
				f := false
				x.Const = &f
			}
		} else {
			kept := x.Matrix[:0]
			for _, conj := range x.Matrix {
				mentions := false
				for _, a := range conj {
					for _, av := range a.Vars() {
						if av == q.Var {
							mentions = true
						}
					}
				}
				if !mentions {
					kept = append(kept, conj)
				}
			}
			x.Matrix = kept
			if len(kept) == 0 {
				f := false
				x.Const = &f
				x.Matrix = nil
			}
		}
		x.Prefix = append(x.Prefix[:i], x.Prefix[i+1:]...)
	}
	for i := len(x.Prefix) - 1; i >= 0; i-- {
		q := x.Prefix[i]
		if !empty[q.Var] || !q.All {
			continue
		}
		// Universal: vacuously TRUE; everything to the right vanishes.
		t := true
		x.Const = &t
		x.Matrix = nil
		x.Prefix = x.Prefix[:i]
	}
}

// Explain renders the logical and physical plan without executing the
// combination phase. It runs the collection phase's planning only.
func (e *Engine) Explain(sel *calculus.Selection, opts Options) (string, error) {
	e.ensureEstimator(&opts)
	x, err := e.prepare(sel, opts)
	if err != nil {
		return "", err
	}
	st := &stats.Counters{}
	e.db.RLock()
	p, err := buildPlan(x, e.db, st, opts.Strategies, planEstimator(opts), parallelism(opts), opts.Exec)
	e.db.RUnlock()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "strategies: %s\n", opts.Strategies)
	if p.est != nil {
		fmt.Fprintf(&b, "ordering: cost-based (scan order %s)\n", strings.Join(p.order, " -> "))
	}
	fmt.Fprintf(&b, "transformed query:\n%s", x)
	fmt.Fprintf(&b, "collection phase (%d scans):\n", len(p.jobs))
	for i, job := range p.jobs {
		path := "tuple"
		if job.batch {
			path = "batch"
		}
		fmt.Fprintf(&b, "  scan %d: %s (vars %s, path=%s)\n", i+1, job.rel.Name(), strings.Join(job.vars, ","), path)
		for _, t := range job.tasks {
			fmt.Fprintf(&b, "    - %s\n", t.describe())
		}
	}
	if len(p.deferred) > 0 {
		b.WriteString("deferred index-index joins:\n")
		for _, d := range p.deferred {
			fmt.Fprintf(&b, "  - %s\n", d.key)
		}
	}
	b.WriteString("combination phase:\n")
	for ci, cp := range p.conjs {
		fmt.Fprintf(&b, "  conjunction %d: %d indirect joins, %d single lists, %d constant gates\n",
			ci, len(cp.ijs), len(cp.sls), len(cp.consts))
	}
	if n := len(p.x.Prefix); n > 0 {
		b.WriteString("quantifier elimination (right to left):\n")
		for i := n - 1; i >= 0; i-- {
			q := p.x.Prefix[i]
			op := "project (SOME)"
			if q.All {
				op = "divide (ALL)"
			}
			fmt.Fprintf(&b, "  - %s: %s\n", q.Var, op)
		}
	}
	return b.String(), nil
}
