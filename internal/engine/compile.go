package engine

import (
	"context"
	"sync"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/normalize"
	"pascalr/internal/optimizer"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
)

// Plan is a compiled, reusable evaluation plan: the compile-time half of
// the query processor (empty-range fold, standardization, and the
// logical strategies 3/4) run once, with the result held as an immutable
// XForm template. Eval and Rows re-execute the run-time half —
// collection, combination, construction — against the template, so
// repeated executions of one selection skip parsing, checking, and
// standardization entirely.
//
// The template is tagged with the database's content version. When the
// database mutates, the next execution revalidates: statistics the plan
// derived itself are refreshed, and the template is recompiled if the
// Lemma 1 empty-range fold would now produce a different formula (the
// prenex transformation assumed the ranges that were non-empty at
// compile time — Example 2.2). Executions therefore always see current
// data; only the compile work is amortized.
//
// A Plan's revalidation state is mutex-guarded, but executions share the
// engine's counter sink and the underlying relations, which are not
// synchronized — like the rest of the engine, a Plan is safe for
// sequential reuse, not for concurrent execution.
type Plan struct {
	eng  *Engine
	sel  *calculus.Selection
	info *calculus.Info

	mu   sync.Mutex
	opts Options
	// autoEst marks statistics the plan derived itself (Compile with
	// CostBased and no estimator); they are refreshed on version change.
	// Caller-supplied statistics are left alone — SetEstimator replaces
	// them.
	autoEst bool
	tmpl    *optimizer.XForm
	foldKey string // rendering of the folded predicate the template assumed
	version uint64 // db content version the template was validated against
}

// Compile runs the compile-time pipeline for a checked selection and
// returns the reusable plan. The selection and info must not be mutated
// afterwards.
func (e *Engine) Compile(sel *calculus.Selection, info *calculus.Info, opts Options) (*Plan, error) {
	autoEst := opts.CostBased && opts.Estimator == nil
	e.ensureEstimator(&opts)
	p := &Plan{eng: e, sel: sel, info: info, opts: opts, autoEst: autoEst, version: e.db.Version()}
	folded := normalize.Fold(sel.Pred, baseline.Emptiness(e.db))
	x, err := e.prepareFolded(sel, folded, p.opts)
	if err != nil {
		return nil, err
	}
	p.tmpl, p.foldKey = x, folded.String()
	return p, nil
}

// SetEstimator replaces the statistics subsequent executions plan with.
// Callers that maintain their own estimator cache (keyed by the database
// version) push refreshed statistics here; the plan then never
// re-analyzes on its own.
func (p *Plan) SetEstimator(est *stats.Estimator) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.opts.Estimator = est
	p.autoEst = false
}

// SetMaxRefTuples changes the reference-tuple budget of subsequent
// executions.
func (p *Plan) SetMaxRefTuples(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.opts.MaxRefTuples = n
}

// instance revalidates the template against the database's content
// version and returns a private XForm copy for one execution (the
// runtime adaptation mutates it) together with the options to run
// under.
func (p *Plan) instance() (*optimizer.XForm, Options, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v := p.eng.db.Version(); v != p.version {
		if p.autoEst {
			p.opts.Estimator = p.eng.db.Analyze()
		}
		folded := normalize.Fold(p.sel.Pred, baseline.Emptiness(p.eng.db))
		if key := folded.String(); key != p.foldKey {
			x, err := p.eng.prepareFolded(p.sel, folded, p.opts)
			if err != nil {
				return nil, Options{}, err
			}
			p.tmpl, p.foldKey = x, key
		}
		p.version = v
	}
	return p.tmpl.Clone(), p.opts, nil
}

// Eval executes the plan to completion and returns the materialized
// result relation. It is the run-time half of the old one-shot Eval:
// collection, combination, and construction against the compiled
// template.
func (p *Plan) Eval(ctx context.Context) (*relation.Relation, error) {
	cur, err := p.Rows(ctx)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	for cur.Next() {
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return cur.result, nil
}

// Rows executes the collection and combination phases eagerly and
// returns a streaming cursor that runs the construction phase one
// result tuple at a time. The cursor observes ctx: cancellation
// mid-stream surfaces as ctx.Err() from Err after Next returns false.
func (p *Plan) Rows(ctx context.Context) (*Cursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	x, opts, err := p.instance()
	if err != nil {
		return nil, err
	}
	e := p.eng
	result := relation.New(p.info.Result, 0xFFFF)

	st := e.st
	if st == nil {
		st = &stats.Counters{}
	}
	// The database's scan counters must flow into the same sink. The
	// construction phase only dereferences, so the sink can be restored
	// before the cursor is consumed.
	prev := e.db.Stats()
	e.db.SetStats(st)
	defer e.db.SetStats(prev)

	opts.maxAdaptations = len(x.Prefix) + len(x.Free) + len(x.Specs) + 2
	pp, err := e.collectWithAdaptation(ctx, x, st, opts)
	if err != nil {
		return nil, err
	}
	// An empty free range, or a constant-FALSE matrix, yields the empty
	// relation.
	if x.Const != nil && !*x.Const {
		return newCursor(ctx, e.db, p.sel, result, nil)
	}
	for _, d := range x.Free {
		if pp.freeRangeEmpty(d.Var) {
			return newCursor(ctx, e.db, p.sel, result, nil)
		}
	}
	refs, err := pp.combine(ctx, opts.MaxRefTuples)
	if err != nil {
		return nil, err
	}
	return newCursor(ctx, e.db, p.sel, result, refs)
}
