package engine

import (
	"context"
	"errors"
	"sync"
	"time"

	"pascalr/internal/baseline"
	"pascalr/internal/calculus"
	"pascalr/internal/normalize"
	"pascalr/internal/obs"
	"pascalr/internal/optimizer"
	"pascalr/internal/relation"
	"pascalr/internal/stats"
)

// Plan is a compiled, reusable evaluation plan: the compile-time half of
// the query processor (empty-range fold, standardization, and the
// logical strategies 3/4) run once, with the result held as an immutable
// XForm template. Eval and Rows re-execute the run-time half —
// collection, combination, construction — against the template, so
// repeated executions of one selection skip parsing, checking, and
// standardization entirely.
//
// The template is tagged with the database's content version. When the
// database mutates, the next execution revalidates: statistics the plan
// derived itself are refreshed, and the template is recompiled if the
// Lemma 1 empty-range fold would now produce a different formula (the
// prenex transformation assumed the ranges that were non-empty at
// compile time — Example 2.2). Executions therefore always see current
// data; only the compile work is amortized.
//
// A Plan is safe for concurrent execution: revalidation state is
// mutex-guarded, every execution counts into a private sink merged into
// the engine's cumulative sink on completion, and the collection phase
// runs under the database's read lock — validated against the content
// version the template assumed, so each execution reads one consistent
// snapshot and concurrent relation writers simply wait.
type Plan struct {
	eng  *Engine
	sel  *calculus.Selection
	info *calculus.Info

	mu   sync.Mutex
	opts Options
	// autoEst marks statistics the plan derived itself (Compile with
	// CostBased and no estimator); they are refreshed whenever the
	// database's live statistics change (content mutations AND
	// background rebuilds), and a refresh recompiles the logical
	// template so the estimator-gated strategy decisions track the
	// data. Caller-supplied statistics are left alone — executions
	// that maintain their own cache push fresh statistics through the
	// EvalWith/RowsWith override, which affects physical planning only.
	autoEst bool
	tmpl    *optimizer.XForm
	foldKey string // rendering of the folded predicate the template assumed
	version uint64 // db content version the template was validated against
	// relMuts records, per relation the template ranges over, the
	// mutation counter its statistics were read at — the per-relation
	// staleness key: a mutation of a relation the plan never touches
	// must not force a template recompile.
	relMuts map[string]uint64
}

// Compile runs the compile-time pipeline for a checked selection and
// returns the reusable plan. The selection and info must not be mutated
// afterwards.
func (e *Engine) Compile(sel *calculus.Selection, info *calculus.Info, opts Options) (*Plan, error) {
	return e.CompileCtx(context.Background(), sel, info, opts)
}

// CompileCtx is Compile carrying a context: when the context carries a
// trace span (internal/obs), the standardize and optimize phases record
// child spans. Compilation itself ignores cancellation — it is fast and
// has no mid-point worth aborting at.
func (e *Engine) CompileCtx(ctx context.Context, sel *calculus.Selection, info *calculus.Info, opts Options) (*Plan, error) {
	autoEst := opts.CostBased && opts.Estimator == nil
	p := &Plan{eng: e, sel: sel, info: info, autoEst: autoEst, version: e.db.Version()}
	// Counters first, estimator second: a mutation racing the compile
	// then leaves a counter mismatch (an unnecessary refresh next
	// execution), never a fresh-tagged stale estimator.
	muts := p.captureMutCounts()
	e.ensureEstimator(&opts)
	p.opts = opts
	folded := normalize.Fold(sel.Pred, baseline.Emptiness(e.db))
	x, err := e.prepareFoldedCtx(ctx, sel, folded, p.opts)
	if err != nil {
		return nil, err
	}
	p.tmpl, p.foldKey = x, folded.String()
	p.relMuts = templateMuts(x, muts)
	return p, nil
}

// captureMutCounts snapshots every relation's mutation counter. Callers
// must capture BEFORE fetching the estimator they compile with, so a
// mutation racing the compile leaves a counter mismatch (an unnecessary
// refresh next execution) rather than a fresh-tagged stale template.
func (p *Plan) captureMutCounts() map[string]uint64 {
	muts := map[string]uint64{}
	for _, r := range p.eng.db.Relations() {
		muts[r.Name()] = r.MutCount()
	}
	return muts
}

// templateMuts keeps the captured counters of exactly the relations the
// compiled template ranges over.
func templateMuts(x *optimizer.XForm, muts map[string]uint64) map[string]uint64 {
	out := map[string]uint64{}
	keep := func(rel string) {
		if m, ok := muts[rel]; ok {
			out[rel] = m
		}
	}
	for _, d := range x.Free {
		keep(d.Range.Rel)
	}
	for _, q := range x.Prefix {
		keep(q.Range.Rel)
	}
	for _, s := range x.Specs {
		keep(s.Range.Rel)
	}
	return out
}

// statsStale reports whether any relation the template ranges over
// mutated (or had its statistics rebuilt) since the template was
// compiled.
func (p *Plan) statsStale() bool {
	for rel, mut := range p.relMuts {
		if r, ok := p.eng.db.Relation(rel); ok && r.MutCount() != mut {
			return true
		}
	}
	return false
}

// instance revalidates the template against the database's content
// version and returns a private XForm copy for one execution (the
// runtime adaptation mutates it) together with the options to run
// under and the content version the template was validated against —
// the execution re-checks that version under the database read lock
// (snapshot validation) before scanning.
func (p *Plan) instance() (*optimizer.XForm, Options, uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	statsChanged := false
	var muts map[string]uint64
	if p.autoEst && p.statsStale() {
		// A relation this plan ranges over mutated or had its
		// statistics rebuilt (rebuilds deliberately do not move the
		// content version, so this must not hide behind the version
		// check below); mutations of unrelated relations are ignored —
		// per-relation staleness, matched to the snapshot cache's
		// granularity. Counters are captured before the estimator (see
		// captureMutCounts), and the estimator itself is epoch-cached,
		// so the refresh allocates only when something actually changed.
		muts = p.captureMutCounts()
		p.opts.Estimator = p.eng.db.Estimator()
		statsChanged = true
	}
	if v := p.eng.db.Version(); v != p.version || statsChanged {
		folded := normalize.Fold(p.sel.Pred, baseline.Emptiness(p.eng.db))
		// Recompile the template when the empty-range fold changed
		// (Lemma 1) — and also when this plan's statistics did: the
		// logical strategies bake estimator-driven decisions (the
		// extraction gate, the elimination order) into the template,
		// which would otherwise stay frozen at compile-time statistics
		// forever.
		if key := folded.String(); key != p.foldKey || statsChanged {
			if muts == nil {
				// The fold changed while every tracked relation held
				// still: a relation the template does not range over
				// (typically one the fold eliminated while it was empty)
				// mutated. Self-derived statistics must refresh here too —
				// relMuts is restamped with current counters below, which
				// would otherwise tag the compile-time estimator as fresh
				// forever. Counters before estimator, as in Compile.
				muts = p.captureMutCounts()
				if p.autoEst {
					p.opts.Estimator = p.eng.db.Estimator()
				}
			}
			x, err := p.eng.prepareFolded(p.sel, folded, p.opts)
			if err != nil {
				return nil, Options{}, 0, err
			}
			p.tmpl, p.foldKey = x, key
			p.relMuts = templateMuts(x, muts)
		}
		p.version = v
	}
	return p.tmpl.Clone(), p.opts, p.version, nil
}

// maxStaleRetries bounds Eval's optimistic re-executions when a
// concurrent writer deletes referenced elements between the combination
// phase and construction.
const maxStaleRetries = 4

// Eval executes the plan to completion and returns the materialized
// result relation. It is the run-time half of the old one-shot Eval:
// collection, combination, and construction against the compiled
// template. When a concurrent writer invalidates references before
// construction finishes (relation.ErrStale), Eval re-executes against
// the new contents — optimistic concurrency for the materializing
// path; only a writer that keeps winning the race through every retry
// surfaces the error.
func (p *Plan) Eval(ctx context.Context) (*relation.Relation, error) {
	return p.EvalWith(ctx, nil)
}

// EvalWith is Eval with per-execution option overrides: the override
// runs against a private copy of the plan's options after
// revalidation, so concurrent executions with different
// execution-time options (budget, parallelism, statistics) never
// contaminate each other or the plan.
func (p *Plan) EvalWith(ctx context.Context, override func(*Options)) (*relation.Relation, error) {
	var lastErr error
	for attempt := 0; attempt <= maxStaleRetries; attempt++ {
		cur, err := p.RowsWith(ctx, override)
		if err != nil {
			return nil, err
		}
		for cur.Next() {
		}
		err = cur.Err()
		cur.Close()
		if err == nil {
			return cur.result, nil
		}
		if !errors.Is(err, relation.ErrStale) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// maxSnapshotRetries bounds the optimistic loop that aligns a
// revalidated template with the contents the collection phase will
// read: when a writer commits between revalidation and lock
// acquisition, the execution refolds and retries. After the budget it
// proceeds with the latest template — the runtime Lemma 1 adaptation
// still catches ranges that emptied, matching the serial engine's
// behaviour under interleaved mutations.
const maxSnapshotRetries = 3

// Rows executes the collection and combination phases eagerly and
// returns a streaming cursor that runs the construction phase one
// result tuple at a time. The cursor observes ctx: cancellation
// mid-stream surfaces as ctx.Err() from Err after Next returns false.
//
// The collection phase holds the database read lock: one acquisition
// covers every scan and permanent-index probe of the execution
// (version-checked against the template's snapshot), so concurrent
// Exec writers serialize against it. Counters accumulate in a
// per-execution sink that merges into the engine's cumulative sink when
// the phases complete — successful or not.
func (p *Plan) Rows(ctx context.Context) (*Cursor, error) {
	return p.RowsWith(ctx, nil)
}

// RowsWith is Rows with per-execution option overrides; see EvalWith.
func (p *Plan) RowsWith(ctx context.Context, override func(*Options)) (*Cursor, error) {
	cur, _, err := p.rowsWithPlan(ctx, override)
	return cur, err
}

// rowsWithPlan is RowsWith returning the executed physical plan too,
// for EXPLAIN reporting (the plan holds the materialized range-list
// sizes, structures, and join log the report compares estimates
// against).
func (p *Plan) rowsWithPlan(ctx context.Context, override func(*Options)) (*Cursor, *plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	e := p.eng
	execSt := &stats.Counters{}
	defer e.mergeStats(execSt)
	mQueries.Inc()
	qStart := time.Now()
	defer func() { mQueryLatency.Observe(time.Since(qStart)) }()
	sp := obs.SpanFrom(ctx)
	if sp != nil {
		// Runs before the deferred mergeStats (LIFO), when the
		// execution's private sink is complete: the slow-query log reads
		// these per-execution counter deltas off the root span.
		defer func() {
			sp.SetInt("tuples_read", execSt.TuplesRead)
			sp.SetInt("index_probes", execSt.IndexProbes)
			sp.SetInt("comparisons", execSt.Comparisons)
			sp.SetInt("ref_tuples", execSt.RefTuples)
		}()
	}

	var x *optimizer.XForm
	var opts Options
	var pp *plan
	for attempt := 0; ; attempt++ {
		var ver uint64
		var err error
		x, opts, ver, err = p.instance()
		if err != nil {
			return nil, nil, err
		}
		if override != nil {
			override(&opts)
		}
		e.db.RLock()
		if e.db.Version() != ver && attempt < maxSnapshotRetries {
			// A writer committed since revalidation: the fold (and any
			// self-derived statistics) may describe contents the scans
			// will not see. Retry against the new version.
			e.db.RUnlock()
			continue
		}
		opts.maxAdaptations = len(x.Prefix) + len(x.Free) + len(x.Specs) + 2
		pp, err = e.collectWithAdaptation(ctx, x, execSt, opts)
		e.db.RUnlock()
		if err != nil {
			return nil, nil, err
		}
		break
	}
	if len(pp.jobSpans) > 0 {
		pp.annotateScanSpans()
	}

	result := relation.New(p.info.Result, 0xFFFF)
	// An empty free range, or a constant-FALSE matrix, yields the empty
	// relation.
	if x.Const != nil && !*x.Const {
		cur, err := newCursor(ctx, e.db, p.sel, result, nil)
		return cur, pp, err
	}
	for _, d := range x.Free {
		if pp.freeRangeEmpty(d.Var) {
			cur, err := newCursor(ctx, e.db, p.sel, result, nil)
			return cur, pp, err
		}
	}
	pp.combSp = sp.Start("combination")
	refs, err := pp.combine(ctx, opts.MaxRefTuples)
	if err != nil {
		pp.combSp.End()
		return nil, nil, err
	}
	if pp.combSp != nil {
		pp.combSp.SetInt("ref_tuples", int64(refs.Len()))
		pp.combSp.End()
	}
	cur, err := newCursor(ctx, e.db, p.sel, result, refs)
	return cur, pp, err
}
