package colbatch

import (
	"errors"
	"testing"

	"pascalr/internal/value"
)

// lengths around word boundaries: empty, partial word, exact words,
// one past, and a long non-multiple-of-64.
var edgeLens = []int{0, 1, 63, 64, 65, 127, 128, 129, 1000}

func TestBitmapSetAllTailMasking(t *testing.T) {
	bm := &Bitmap{}
	for _, n := range edgeLens {
		bm.SetAll(n)
		if got := bm.Count(); got != n {
			t.Errorf("SetAll(%d).Count() = %d", n, got)
		}
		for _, w := range bm.Words() {
			_ = w
		}
		// Tail bits beyond n must be zero so Count/Empty need no masking.
		if n%64 != 0 && n > 0 {
			last := bm.Words()[len(bm.Words())-1]
			if last>>(uint(n%64)) != 0 {
				t.Errorf("SetAll(%d): tail bits set in last word %x", n, last)
			}
		}
		if n > 0 && (!bm.Has(0) || !bm.Has(n-1)) {
			t.Errorf("SetAll(%d): boundary bits not set", n)
		}
	}
}

func TestBitmapShrinkThenGrow(t *testing.T) {
	// Shrinking to a smaller length and growing back must not leak
	// stale set bits through the reused backing array.
	bm := &Bitmap{}
	bm.SetAll(130)
	bm.ClearAll(10)
	bm.SetAll(65)
	if got := bm.Count(); got != 65 {
		t.Errorf("count after shrink/grow = %d, want 65", got)
	}
	bm.ClearAll(200)
	if !bm.Empty() || bm.Count() != 0 {
		t.Errorf("ClearAll(200) left set bits")
	}
}

func TestBitmapSetClearHas(t *testing.T) {
	bm := NewBitmap(129)
	for _, i := range []int{0, 63, 64, 100, 128} {
		bm.Set(i)
		if !bm.Has(i) {
			t.Errorf("Has(%d) false after Set", i)
		}
	}
	if bm.Count() != 5 {
		t.Errorf("count = %d, want 5", bm.Count())
	}
	bm.Clear(64)
	if bm.Has(64) || bm.Count() != 4 {
		t.Errorf("Clear(64) failed: count=%d", bm.Count())
	}
}

func TestBitmapCombination(t *testing.T) {
	a, b := NewBitmap(70), NewBitmap(70)
	for i := 0; i < 70; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 70; i += 3 {
		b.Set(i)
	}
	and := &Bitmap{}
	and.CopyFrom(a)
	and.And(b)
	for i := 0; i < 70; i++ {
		want := i%2 == 0 && i%3 == 0
		if and.Has(i) != want {
			t.Fatalf("And bit %d = %v, want %v", i, and.Has(i), want)
		}
	}
	or := &Bitmap{}
	or.CopyFrom(a)
	or.Or(b)
	for i := 0; i < 70; i++ {
		want := i%2 == 0 || i%3 == 0
		if or.Has(i) != want {
			t.Fatalf("Or bit %d = %v, want %v", i, or.Has(i), want)
		}
	}
	anot := &Bitmap{}
	anot.CopyFrom(a)
	anot.AndNot(b)
	for i := 0; i < 70; i++ {
		want := i%2 == 0 && i%3 != 0
		if anot.Has(i) != want {
			t.Fatalf("AndNot bit %d = %v, want %v", i, anot.Has(i), want)
		}
	}
}

func TestBitmapDoOrder(t *testing.T) {
	bm := NewBitmap(129)
	want := []int{0, 5, 63, 64, 65, 127, 128}
	for _, i := range want {
		bm.Set(i)
	}
	var got []int
	bm.Do(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("Do visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Do visited %v, want %v", got, want)
		}
	}
	// Early stop.
	var n int
	bm.Do(func(i int) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Do early stop visited %d bits, want 3", n)
	}
}

func TestBitmapFilter(t *testing.T) {
	bm := &Bitmap{}
	bm.SetAll(100)
	if err := bm.Filter(func(i int) (bool, error) { return i%7 == 0, nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if bm.Has(i) != (i%7 == 0) {
			t.Fatalf("Filter bit %d wrong", i)
		}
	}
	boom := errors.New("boom")
	bm.SetAll(100)
	err := bm.Filter(func(i int) (bool, error) {
		if i == 10 {
			return false, boom
		}
		return true, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("Filter error = %v, want boom", err)
	}
}

func TestBatchAppendResetRow(t *testing.T) {
	b := New(2, 4)
	if b.Len() != 0 || b.Cap() != 4 || b.NumCols() != 2 {
		t.Fatalf("fresh batch: len=%d cap=%d cols=%d", b.Len(), b.Cap(), b.NumCols())
	}
	// Column 0 is typed (unboxed ordinals), column 1 stays boxed.
	b.Configure(3, []value.Kind{value.KindInt, value.KindString}, []string{"", ""})
	if !b.IsOrd(0) || b.IsOrd(1) {
		t.Fatalf("IsOrd = %v,%v, want true,false", b.IsOrd(0), b.IsOrd(1))
	}
	tuple := []value.Value{value.Int(1), value.String_("a")}
	for i := 0; i < 4; i++ {
		tuple[0] = value.Int(int64(i))
		b.Append(100+i, tuple)
	}
	if !b.Full() || b.Len() != 4 {
		t.Fatalf("batch not full after 4 appends")
	}
	// Appended values must be copies: mutating the source tuple after
	// Append must not change the batch.
	tuple[0] = value.Int(999)
	if got := b.ColVal(0, 2); !value.Equal(got, value.Int(2)) {
		t.Errorf("col 0 row 2 = %s, want 2 (batch aliases caller tuple?)", got)
	}
	if got := b.Ords(0)[2]; got != 2 {
		t.Errorf("ords col 0 row 2 = %d, want 2", got)
	}
	if got := b.Ref(1); !value.Equal(got, value.Ref(3, 101, 0)) {
		t.Errorf("Ref(1) = %s, want @3:101", got)
	}
	row := make([]value.Value, 2)
	b.Row(3, row)
	if got := row[0].AsInt(); got != 3 {
		t.Errorf("Row(3)[0] = %d, want 3", got)
	}
	if got := row[1].AsString(); got != "a" {
		t.Errorf("Row(3)[1] = %q, want a", got)
	}
	b.Reset()
	if b.Len() != 0 || b.Full() {
		t.Errorf("Reset left rows behind")
	}
}

func TestBatchTypedReconstruction(t *testing.T) {
	// Values reconstructed from the ordinal vectors must be Equal to the
	// originals — enum values keep their type name, references their
	// full packing — or downstream dedup keys and fingerprints diverge.
	b := New(3, 2)
	b.Configure(7, []value.Kind{value.KindEnum, value.KindRef, value.KindBool}, []string{"daytype", "", ""})
	orig := []value.Value{value.Enum("daytype", 2), value.Ref(5, 42, 0), value.Bool(true)}
	b.Append(9, orig)
	row := make([]value.Value, 3)
	b.Row(0, row)
	for c := range orig {
		if !value.Equal(row[c], orig[c]) {
			t.Errorf("col %d reconstructed as %s, want %s", c, row[c], orig[c])
		}
	}
}
