// Package colbatch holds the columnar batch and selection-bitmap types
// of the vectorized collection phase.
//
// A Batch materializes a fixed-capacity window of a relation scan in
// column-major order, with row provenance kept as compact slot indexes
// from which reference values are minted on demand. Columns of an
// int-backed kind (integers, booleans, enumerations, references) are
// stored unboxed as raw []int64 ordinal vectors — a quarter the width
// of a boxed value, and the shape the branchless FilterOrdBits kernel
// consumes; string columns stay boxed. Predicates evaluate as bulk
// operations over whole columns, producing selection Bitmaps (one
// uint64 word per 64 rows) that combine with bitwise AND/OR/AND-NOT
// instead of branching per tuple.
//
// Bitmap maintains one invariant throughout: bits at positions >= Len()
// are always zero, so Count, Empty, and word-level combination never
// need to mask the tail word explicitly.
package colbatch

import (
	"math/bits"

	"pascalr/internal/value"
)

// Batch is a fixed-capacity columnar window over a relation scan. Row
// provenance is one int32 slot index per row plus the scanned
// relation's id (set once per scan with Configure) — a quarter the
// width of a materialized reference value — and Ref mints the full
// reference on demand, so only rows that survive selection ever pay
// for one. Columns whose kind Configure declares int-backed are stored
// unboxed in ords; the rest (and every column of an unconfigured
// batch) are boxed in vals.
type Batch struct {
	slots []int32
	relID int
	kinds []value.Kind // per-column kinds; nil (unconfigured) boxes everything
	enums []string     // enumeration type name per enum column ("" otherwise)
	ords  [][]int64
	vals  [][]value.Value
	cap   int
}

// New returns an empty batch holding up to capacity rows of ncols
// columns, with every column boxed until Configure declares kinds.
func New(ncols, capacity int) *Batch {
	if capacity < 1 {
		capacity = 1
	}
	b := &Batch{
		slots: make([]int32, 0, capacity),
		ords:  make([][]int64, ncols),
		vals:  make([][]value.Value, ncols),
		cap:   capacity,
	}
	for c := range b.vals {
		b.vals[c] = make([]value.Value, 0, capacity)
	}
	return b
}

// Configure prepares the batch for one scan: relID is the relation Ref
// mints references against, kinds declares each column's storage class
// (int-backed kinds go unboxed; nil boxes everything), and enums names
// the enumeration type of each enum column (for reconstruction). The
// kinds and enums slices are retained, not copied — callers pass
// immutable schema-derived data. Configuring once per scan keeps
// pooled batches safe to reuse across relations.
func (b *Batch) Configure(relID int, kinds []value.Kind, enums []string) {
	b.relID = relID
	b.kinds = kinds
	b.enums = enums
	for c, k := range kinds {
		if value.OrdKind(k) && b.ords[c] == nil {
			b.ords[c] = make([]int64, 0, b.cap)
		}
	}
}

// IsOrd reports whether column c is stored unboxed.
func (b *Batch) IsOrd(c int) bool {
	return c < len(b.kinds) && value.OrdKind(b.kinds[c])
}

func (b *Batch) enumOf(c int) string {
	if c < len(b.enums) {
		return b.enums[c]
	}
	return ""
}

// Append copies one tuple (and its slot index) into the batch. The
// caller keeps ownership of the tuple slice: storage backends are free
// to reuse it after Append returns. Slot indexes fit int32 by
// construction — an in-memory slot array approaching 2^31 rows
// exhausts memory long before it exhausts the index space.
func (b *Batch) Append(si int, tuple []value.Value) {
	b.slots = append(b.slots, int32(si))
	for c := range tuple {
		if b.IsOrd(c) {
			b.ords[c] = append(b.ords[c], tuple[c].Ord())
		} else {
			b.vals[c] = append(b.vals[c], tuple[c])
		}
	}
}

// AppendCols is Append restricted to the given column indexes: only
// those columns are materialized, the rest stay empty (reading an
// unmaterialized column panics on the out-of-range index — a mask bug
// fails loudly instead of serving stale values). Row counting (Len,
// Full) follows the slots, which are always appended.
func (b *Batch) AppendCols(si int, tuple []value.Value, cols []int) {
	b.slots = append(b.slots, int32(si))
	for _, c := range cols {
		if b.IsOrd(c) {
			b.ords[c] = append(b.ords[c], tuple[c].Ord())
		} else {
			b.vals[c] = append(b.vals[c], tuple[c])
		}
	}
}

// AppendSlot appends only the slot index of one row, deferring column
// materialization to GrowOrds/GrowVals. It is the row half of the
// bulk-fill fast path: the storage backend gathers a window of live
// slot indexes first, then fills each masked column in one pass.
func (b *Batch) AppendSlot(si int) {
	b.slots = append(b.slots, int32(si))
}

// Slots returns the slot indexes of the batch's rows. Shared storage —
// read-only.
func (b *Batch) Slots() []int32 { return b.slots }

// GrowOrds extends unboxed column c by n values and returns the new
// span for the caller to fill — the column half of the bulk-fill fast
// path. Rows appended via AppendSlot have no column values until a
// grown span covering them is filled.
func (b *Batch) GrowOrds(c, n int) []int64 {
	col := b.ords[c]
	col = col[:len(col)+n]
	b.ords[c] = col
	return col[len(col)-n:]
}

// GrowVals is GrowOrds for boxed columns.
func (b *Batch) GrowVals(c, n int) []value.Value {
	col := b.vals[c]
	col = col[:len(col)+n]
	b.vals[c] = col
	return col[len(col)-n:]
}

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return len(b.slots) }

// Cap returns the row capacity the batch was created with.
func (b *Batch) Cap() int { return b.cap }

// NumCols returns the number of columns per row.
func (b *Batch) NumCols() int { return len(b.vals) }

// Full reports whether the batch reached capacity.
func (b *Batch) Full() bool { return len(b.slots) >= b.cap }

// Reset empties the batch, retaining capacity.
func (b *Batch) Reset() {
	b.slots = b.slots[:0]
	for c := range b.ords {
		if b.ords[c] != nil {
			b.ords[c] = b.ords[c][:0]
		}
		b.vals[c] = b.vals[c][:0]
	}
}

// Ref mints the reference value of row i from the relation id and the
// row's slot index. Generation is always zero, matching the relation
// layer: slots never revive, so liveness alone decides staleness.
func (b *Batch) Ref(i int) value.Value {
	return value.Ref(b.relID, int(b.slots[i]), 0)
}

// Ords returns unboxed column c. Shared storage — read-only.
func (b *Batch) Ords(c int) []int64 { return b.ords[c] }

// Vals returns boxed column c. Shared storage — read-only.
func (b *Batch) Vals(c int) []value.Value { return b.vals[c] }

// ColVal returns column c of row i as a value, reconstructing it from
// the ordinal vector for unboxed columns.
func (b *Batch) ColVal(c, i int) value.Value {
	if b.IsOrd(c) {
		return value.MakeOrd(b.kinds[c], b.ords[c][i], b.enumOf(c))
	}
	return b.vals[c][i]
}

// Row reconstructs row i into dst, which must have NumCols capacity.
// It is the degrade seam to tuple-at-a-time evaluation: predicates
// with no bulk form run against the reconstructed row.
func (b *Batch) Row(i int, dst []value.Value) {
	for c := range dst {
		dst[c] = b.ColVal(c, i)
	}
}

// Bitmap is a selection vector over the rows of one batch: bit i set
// means row i survives. Bits at positions >= Len() are always zero.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-zero bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	bm := &Bitmap{}
	bm.ClearAll(n)
	return bm
}

func wordsFor(n int) int { return (n + 63) / 64 }

// SetAll resizes the bitmap to n rows with every bit set. Tail bits of
// the last word (positions >= n) stay zero.
func (bm *Bitmap) SetAll(n int) {
	bm.resize(n)
	for i := range bm.words {
		bm.words[i] = ^uint64(0)
	}
	bm.maskTail()
}

// ClearAll resizes the bitmap to n rows with every bit clear.
func (bm *Bitmap) ClearAll(n int) {
	bm.resize(n)
	for i := range bm.words {
		bm.words[i] = 0
	}
}

func (bm *Bitmap) resize(n int) {
	w := wordsFor(n)
	if cap(bm.words) < w {
		bm.words = make([]uint64, w)
	} else {
		bm.words = bm.words[:w]
	}
	bm.n = n
}

// maskTail zeroes bits at positions >= n in the last word.
func (bm *Bitmap) maskTail() {
	if r := bm.n % 64; r != 0 && len(bm.words) > 0 {
		bm.words[len(bm.words)-1] &= (uint64(1) << uint(r)) - 1
	}
}

// Len returns the number of rows the bitmap covers.
func (bm *Bitmap) Len() int { return bm.n }

// Words exposes the backing words for bulk filtering. The invariant
// that bits >= Len() are zero must be preserved by writers that only
// clear bits (never set); anything else must call through Set.
func (bm *Bitmap) Words() []uint64 { return bm.words }

// Has reports whether bit i is set.
func (bm *Bitmap) Has(i int) bool {
	return bm.words[i/64]&(uint64(1)<<uint(i%64)) != 0
}

// Set sets bit i. i must be < Len().
func (bm *Bitmap) Set(i int) {
	bm.words[i/64] |= uint64(1) << uint(i%64)
}

// Clear clears bit i.
func (bm *Bitmap) Clear(i int) {
	bm.words[i/64] &^= uint64(1) << uint(i%64)
}

// Count returns the number of set bits.
func (bm *Bitmap) Count() int {
	n := 0
	for _, w := range bm.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (bm *Bitmap) Empty() bool {
	for _, w := range bm.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// And intersects bm with o (same length).
func (bm *Bitmap) And(o *Bitmap) {
	for i := range bm.words {
		bm.words[i] &= o.words[i]
	}
}

// Or unions o into bm (same length).
func (bm *Bitmap) Or(o *Bitmap) {
	for i := range bm.words {
		bm.words[i] |= o.words[i]
	}
}

// AndNot clears in bm every bit set in o (same length).
func (bm *Bitmap) AndNot(o *Bitmap) {
	for i := range bm.words {
		bm.words[i] &^= o.words[i]
	}
}

// CopyFrom makes bm an exact copy of o.
func (bm *Bitmap) CopyFrom(o *Bitmap) {
	bm.resize(o.n)
	copy(bm.words, o.words)
}

// Do calls fn for each set bit in ascending order. fn returning false
// stops the iteration.
func (bm *Bitmap) Do(fn func(i int) bool) {
	for wi, w := range bm.words {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			if !fn(i) {
				return
			}
			w &= w - 1
		}
	}
}

// Filter calls fn for each set bit in ascending order and clears the
// bits fn rejects. An error from fn aborts immediately, leaving the
// bitmap in a partially filtered state.
func (bm *Bitmap) Filter(fn func(i int) (bool, error)) error {
	for wi := range bm.words {
		w := bm.words[wi]
		for w != 0 {
			bit := w & -w
			keep, err := fn(wi*64 + bits.TrailingZeros64(w))
			if err != nil {
				return err
			}
			if !keep {
				bm.words[wi] &^= bit
			}
			w &= w - 1
		}
	}
	return nil
}
