package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTraceTree: spans nest, attributes attach, and the snapshot
// mirrors the recorded structure.
func TestTraceTree(t *testing.T) {
	tr := NewTrace("cafe0123cafe0123")
	if tr.ID() != "cafe0123cafe0123" {
		t.Fatalf("trace id = %q", tr.ID())
	}
	root := tr.Root()
	p := root.Start("parse")
	p.End()
	coll := root.Start("collection")
	sc := coll.Start("scan employees")
	sc.SetInt("actual.e", 17)
	sc.SetFloat("est.e", 17)
	sc.SetAttr("via.e", "range list")
	sc.End()
	coll.End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.TraceID != "cafe0123cafe0123" {
		t.Fatalf("snapshot trace id = %q", snap.TraceID)
	}
	if snap.Root.Name != "query" || len(snap.Root.Children) != 2 {
		t.Fatalf("root = %+v", snap.Root)
	}
	scan := snap.Root.Children[1].Children[0]
	if scan.Name != "scan employees" {
		t.Fatalf("scan span = %+v", scan)
	}
	if scan.Attrs["actual.e"] != "17" || scan.Attrs["via.e"] != "range list" {
		t.Fatalf("scan attrs = %v", scan.Attrs)
	}

	js, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back TraceJSON
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.Root.Children[0].Name != "parse" {
		t.Fatalf("round-tripped tree = %+v", back.Root)
	}

	out := tr.Render()
	for _, want := range []string{"trace cafe0123cafe0123", "- query", "- parse", "- scan employees", "actual.e=17"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

// TestTracePhases: direct children of the root keyed by name, first
// occurrence winning.
func TestTracePhases(t *testing.T) {
	tr := NewTrace("")
	a := tr.Root().Start("collection")
	time.Sleep(time.Millisecond)
	a.End()
	b := tr.Root().Start("collection") // re-plan: second occurrence ignored
	b.End()
	tr.Finish()
	ph := tr.Phases()
	if len(ph) != 1 || ph["collection"] < time.Millisecond {
		t.Fatalf("phases = %v", ph)
	}
}

// TestNilSafety: every operation on a nil trace/span is a no-op, and a
// nil span never changes the context.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Root() != nil || tr.Duration() != 0 {
		t.Fatal("nil trace leaked state")
	}
	tr.Finish()
	if _, err := tr.JSON(); err == nil {
		t.Fatal("nil trace JSON did not error")
	}
	if tr.Render() != "" || tr.Phases() != nil {
		t.Fatal("nil trace rendered")
	}

	var sp *Span
	sp.End()
	sp.SetAttr("k", "v")
	sp.SetInt("k", 1)
	sp.SetFloat("k", 1)
	if sp.Start("child") != nil {
		t.Fatal("nil span spawned a child")
	}

	ctx := context.Background()
	if With(ctx, nil) != ctx {
		t.Fatal("With(ctx, nil) allocated a new context")
	}
	if SpanFrom(ctx) != nil || TraceFrom(ctx) != nil {
		t.Fatal("empty context carried a span")
	}

	live := NewTrace("")
	ctx2 := With(ctx, live.Root())
	if SpanFrom(ctx2) != live.Root() || TraceFrom(ctx2) != live {
		t.Fatal("context did not carry the span")
	}
}

// TestDisabledTracingAllocatesNothing: the off path — context lookup
// plus nil checks — must not allocate.
func TestDisabledTracingAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := SpanFrom(ctx)
		c := sp.Start("x")
		c.SetInt("k", 1)
		c.End()
		_ = With(ctx, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %v per op", allocs)
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 || a == b {
		t.Fatalf("trace ids %q %q", a, b)
	}
}

// TestMetricsPrimitives: counters, gauges, histograms, and the
// registry's idempotence.
func TestMetricsPrimitives(t *testing.T) {
	c := GetCounter("pascal_engine_obstest_total", "test counter")
	c.Inc()
	c.Add(2)
	if c.Load() != 3 {
		t.Fatalf("counter = %d", c.Load())
	}
	if GetCounter("pascal_engine_obstest_total", "test counter") != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := GetGauge("pascal_engine_obstest_count", "test gauge")
	g.Set(5)
	g.Add(-2)
	if g.Load() != 3 {
		t.Fatalf("gauge = %d", g.Load())
	}

	h := GetHistogram("pascal_engine_obstest_seconds", "test histogram")
	h.Observe(50 * time.Microsecond) // first bucket is 100µs
	h.Observe(3 * time.Second)       // beyond the last bound
	if h.Count() != 2 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if h.Sum() != 3*time.Second+50*time.Microsecond {
		t.Fatalf("histogram sum = %v", h.Sum())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	GetGauge("pascal_engine_obstest_total", "wrong kind")
}

// TestWritePrometheus: the exposition carries HELP/TYPE headers, plain
// samples, cumulative histogram buckets, and the info series' labels.
func TestWritePrometheus(t *testing.T) {
	c := GetCounter("pascal_engine_obstest_expo_total", "expo counter")
	c.Add(7)
	h := GetHistogram("pascal_engine_obstest_expo_seconds", "expo histogram")
	h.Observe(time.Millisecond)
	info := GetInfo("pascal_engine_obstest_expo_info", "expo info")
	info.SetLabels(Attr{Key: "trace_id", Value: "beef"})

	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP pascal_engine_obstest_expo_total expo counter",
		"# TYPE pascal_engine_obstest_expo_total counter",
		"pascal_engine_obstest_expo_total 7",
		"# TYPE pascal_engine_obstest_expo_seconds histogram",
		`pascal_engine_obstest_expo_seconds_bucket{le="+Inf"} 1`,
		"pascal_engine_obstest_expo_seconds_count 1",
		`pascal_engine_obstest_expo_info{trace_id="beef"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
