package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE comments, cumulative
// histogram buckets with le labels plus _sum and _count, info metrics as
// a constant-1 gauge carrying labels.
func WritePrometheus(w io.Writer) error {
	for _, m := range snapshotMetrics() {
		if err := writeMetric(w, m); err != nil {
			return err
		}
	}
	return nil
}

func writeMetric(w io.Writer, m *metric) error {
	typ := "counter"
	switch m.kind {
	case kindGauge, kindInfo:
		typ = "gauge"
	case kindHistogram, kindValueHistogram:
		typ = "histogram"
	}
	if m.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, escapeHelp(m.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ); err != nil {
		return err
	}
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Load())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", m.name, m.gauge.Load())
		return err
	case kindInfo:
		labels, set := m.info.snapshot()
		if !set {
			_, err := fmt.Fprintf(w, "%s 0\n", m.name)
			return err
		}
		_, err := fmt.Fprintf(w, "%s{%s} 1\n", m.name, formatLabels(labels))
		return err
	case kindHistogram:
		h := m.histogram
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatBound(b), cum); err != nil {
				return err
			}
		}
		cum += h.inf.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n", m.name, h.Sum().Seconds()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", m.name, cum)
		return err
	case kindValueHistogram:
		h := m.valueHist
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatBound(b), cum); err != nil {
				return err
			}
		}
		cum += h.inf.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n", m.name, h.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", m.name, cum)
		return err
	}
	return nil
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func formatLabels(labels []Attr) string {
	var sb strings.Builder
	for i, a := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		sb.WriteString(strconv.Quote(a.Value))
	}
	return sb.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
