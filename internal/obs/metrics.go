// Package obs is the zero-dependency observability layer: a process-wide
// registry of typed metrics (atomic counters, gauges, fixed-bucket latency
// histograms) exposed in Prometheus text format, and per-execution span
// traces (trace.go) recorded like the engine's per-execution counter sinks.
//
// Metric names follow pascal_{layer}_{name}_{unit} with layer one of
// engine, sched, storage, server and unit one of total, seconds, bytes,
// count, rows, info — the obs CI job lints every registered name against
// that pattern and against the ARCHITECTURE.md metrics table.
//
// Registration is idempotent by name: tests open many databases and every
// package registers its metrics in a package-level var block, so the Nth
// GetCounter("x", ...) returns the same instance as the first. Instruments
// are all lock-free atomics on the hot path; the registry mutex is touched
// only at registration and exposition time.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for Prometheus counter semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depths, session counts).
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DefBuckets are the default latency histogram bucket upper bounds in
// seconds: 100µs to 2.5s, roughly log-spaced, plus the implicit +Inf.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket latency histogram. Observations are
// per-bucket atomic increments — no locks, no allocation.
type Histogram struct {
	bounds []float64 // ascending upper bounds in seconds, excluding +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	sumNS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	h.sumNS.Add(d.Nanoseconds())
	for i, b := range h.bounds {
		if s <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// ValueHistogram is a fixed-bucket histogram over plain numeric
// observations (rows per batch, bytes per write) rather than latencies:
// bucket bounds are raw values and the sum is unitless, where Histogram
// interprets everything as seconds. Same lock-free per-bucket atomics.
type ValueHistogram struct {
	bounds []float64 // ascending upper bounds, excluding +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *ValueHistogram) Observe(v int64) {
	h.sum.Add(v)
	f := float64(v)
	for i, b := range h.bounds {
		if f <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Count returns the total number of observations.
func (h *ValueHistogram) Count() int64 {
	n := h.inf.Load()
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *ValueHistogram) Sum() int64 { return h.sum.Load() }

// Info is a single-series informational metric: a constant 1 carrying a
// mutable label set (e.g. the trace ID of the most recent slow query).
// Setting it replaces the labels wholesale, so cardinality stays 1.
type Info struct {
	mu     sync.Mutex
	labels []Attr
	set    bool
}

// SetLabels replaces the info metric's label set.
func (i *Info) SetLabels(labels ...Attr) {
	i.mu.Lock()
	i.labels = append(i.labels[:0], labels...)
	i.set = true
	i.mu.Unlock()
}

func (i *Info) snapshot() ([]Attr, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Attr(nil), i.labels...), i.set
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindValueHistogram
	kindInfo
)

type metric struct {
	name string
	help string
	kind metricKind

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
	valueHist *ValueHistogram
	info      *Info
}

var registry = struct {
	mu     sync.Mutex
	byName map[string]*metric
}{byName: make(map[string]*metric)}

func register(name, help string, kind metricKind) *metric {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if m, ok := registry.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.histogram = &Histogram{
			bounds: DefBuckets,
			counts: make([]atomic.Int64, len(DefBuckets)),
		}
	case kindInfo:
		m.info = &Info{}
	}
	registry.byName[name] = m
	return m
}

// GetCounter returns (registering on first use) the named counter.
func GetCounter(name, help string) *Counter { return register(name, help, kindCounter).counter }

// GetGauge returns (registering on first use) the named gauge.
func GetGauge(name, help string) *Gauge { return register(name, help, kindGauge).gauge }

// GetHistogram returns (registering on first use) the named latency
// histogram with the default buckets.
func GetHistogram(name, help string) *Histogram { return register(name, help, kindHistogram).histogram }

// GetInfo returns (registering on first use) the named info metric.
func GetInfo(name, help string) *Info { return register(name, help, kindInfo).info }

// GetValueHistogram returns (registering on first use) the named value
// histogram. The bounds of the first registration win; like every
// instrument, re-registering under a different kind panics.
func GetValueHistogram(name, help string, bounds []float64) *ValueHistogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if m, ok := registry.byName[name]; ok {
		if m.kind != kindValueHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return m.valueHist
	}
	m := &metric{name: name, help: help, kind: kindValueHistogram}
	m.valueHist = &ValueHistogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)),
	}
	registry.byName[name] = m
	return m.valueHist
}

// Names returns every registered metric name, sorted.
func Names() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	names := make([]string, 0, len(registry.byName))
	for n := range registry.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func snapshotMetrics() []*metric {
	registry.mu.Lock()
	ms := make([]*metric, 0, len(registry.byName))
	for _, m := range registry.byName {
		ms = append(ms, m)
	}
	registry.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}
