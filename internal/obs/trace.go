package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Trace is one query execution's span recorder. Like the engine's
// per-execution counter sinks, a Trace is created per execution and
// read only after (or independently of) the execution — a single small
// mutex guards the span tree, and spans are coarse (phases, scan jobs,
// joins, fetch batches), so contention is negligible.
//
// Every Span method is safe on a nil receiver and does nothing, so
// instrumented code paths pay one context lookup and a nil check when
// tracing is off — no allocation, no branch into obs internals.
type Trace struct {
	mu    sync.Mutex
	id    string
	start time.Time
	root  *Span
}

// Attr is one span attribute (estimated cardinality, relation name, ...).
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one timed node of a trace's span tree.
type Span struct {
	tr       *Trace
	name     string
	start    time.Duration // offset from trace start
	dur      time.Duration // zero until End
	ended    bool
	attrs    []Attr
	children []*Span
}

// NewTraceID returns a fresh 16-hex-digit trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a constant rather than propagate an error channel nobody
		// can act on.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewTrace starts a trace. An empty id draws a fresh one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	t := &Trace{id: id, start: time.Now()}
	t.root = &Span{tr: t, name: "query"}
	return t
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the trace's root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span; the trace is complete.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.End()
}

// Duration returns the root span's duration (elapsed time if the trace
// has not finished yet).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root.ended {
		return t.root.dur
	}
	return time.Since(t.start)
}

// Start opens a child span. Nil-safe: a nil span returns a nil child.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	c := &Span{tr: t, name: name}
	t.mu.Lock()
	c.start = time.Since(t.start)
	s.children = append(s.children, c)
	t.mu.Unlock()
	return c
}

// End closes the span. Safe on nil; a second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if !s.ended {
		s.dur = time.Since(t.start) - s.start
		s.ended = true
	}
	t.mu.Unlock()
}

// SetAttr attaches a string attribute. Safe on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	t.mu.Unlock()
}

// SetInt attaches an integer attribute. Safe on nil.
func (s *Span) SetInt(key string, v int64) {
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetFloat attaches a float attribute. Safe on nil.
func (s *Span) SetFloat(key string, v float64) {
	s.SetAttr(key, strconv.FormatFloat(v, 'g', 4, 64))
}

type spanKeyType struct{}

var spanKey spanKeyType

// With returns ctx carrying s as the current span. A nil span returns
// ctx unchanged, so disabled tracing allocates nothing.
func With(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFrom returns the current span in ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// TraceFrom returns the trace owning the current span in ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if s := SpanFrom(ctx); s != nil {
		return s.tr
	}
	return nil
}

// SpanJSON is the exported form of one span.
type SpanJSON struct {
	Name     string            `json:"name"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanJSON        `json:"children,omitempty"`
}

// TraceJSON is the exported form of a whole trace.
type TraceJSON struct {
	TraceID string   `json:"trace_id"`
	Start   string   `json:"start"`
	DurUS   int64    `json:"dur_us"`
	Root    SpanJSON `json:"root"`
}

// Snapshot captures the trace's current state as an exportable tree.
func (t *Trace) Snapshot() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceJSON{
		TraceID: t.id,
		Start:   t.start.UTC().Format(time.RFC3339Nano),
		DurUS:   t.root.dur.Microseconds(),
		Root:    t.root.snapshotLocked(),
	}
}

func (s *Span) snapshotLocked() SpanJSON {
	j := SpanJSON{
		Name:    s.name,
		StartUS: s.start.Microseconds(),
		DurUS:   s.dur.Microseconds(),
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			j.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		j.Children = append(j.Children, c.snapshotLocked())
	}
	return j
}

// JSON marshals the trace's span tree.
func (t *Trace) JSON() ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("obs: no trace")
	}
	return json.Marshal(t.Snapshot())
}

// Render formats the span tree as an indented text block for CLI output.
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	snap := t.Snapshot()
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s  (%s)\n", snap.TraceID, time.Duration(snap.DurUS)*time.Microsecond)
	renderSpan(&sb, snap.Root, 0)
	return sb.String()
}

func renderSpan(sb *strings.Builder, s SpanJSON, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(sb, "- %s %s", s.Name, time.Duration(s.DurUS)*time.Microsecond)
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("  [")
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(sb, "%s=%s", k, s.Attrs[k])
		}
		sb.WriteByte(']')
	}
	sb.WriteByte('\n')
	for _, c := range s.Children {
		renderSpan(sb, c, depth+1)
	}
}

// Phases returns the durations of the root's direct children keyed by
// span name (first occurrence wins) — the slow-query log's phase
// breakdown.
func (t *Trace) Phases() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.root.children))
	for _, c := range t.root.children {
		if _, ok := out[c.name]; !ok {
			out[c.name] = c.dur
		}
	}
	return out
}
