package collection

import (
	"fmt"

	"pascalr/internal/value"
)

// ValueList collects the distinct values of one component of the
// qualifying elements of a quantified variable's range — the structure
// strategy 4 builds instead of a complete index ("When vnrel is read,
// instead of a complete index only its value list is generated").
type ValueList struct {
	set      map[string]struct{}
	vals     []value.Value
	min, max value.Value
}

// NewValueList creates an empty value list.
func NewValueList() *ValueList {
	return &ValueList{set: make(map[string]struct{})}
}

// Add inserts a value, maintaining the distinct set and the min/max.
func (vl *ValueList) Add(v value.Value) {
	k := value.EncodeKey([]value.Value{v})
	if _, dup := vl.set[k]; dup {
		return
	}
	vl.set[k] = struct{}{}
	vl.vals = append(vl.vals, v)
	if !vl.min.IsValid() || value.MustCompare(v, vl.min) < 0 {
		vl.min = v
	}
	if !vl.max.IsValid() || value.MustCompare(v, vl.max) > 0 {
		vl.max = v
	}
}

// Len returns the number of distinct values.
func (vl *ValueList) Len() int { return len(vl.vals) }

// Has reports membership.
func (vl *ValueList) Has(v value.Value) bool {
	_, ok := vl.set[value.EncodeKey([]value.Value{v})]
	return ok
}

// Min and Max return the extreme values; they are invalid when empty.
func (vl *ValueList) Min() value.Value { return vl.min }

// Max returns the largest value.
func (vl *ValueList) Max() value.Value { return vl.max }

// Values returns the distinct values in insertion order.
func (vl *ValueList) Values() []value.Value { return vl.vals }

// QuantPred is a derived monadic predicate over one component value x,
// deciding "SOME v in list: x op v" or "ALL v in list: x op v" — the
// quantifier evaluation strategy 4 moves into the collection phase.
// Size reports how many values the predicate actually needs to store,
// reproducing the paper's storage refinements.
type QuantPred interface {
	Test(x value.Value) bool
	Size() int
	String() string
}

// MakeQuantPred builds the most compact predicate for the given
// operator and quantifier per section 4.4:
//
//   - < and <= need only the maximum (SOME) or minimum (ALL) value;
//     > and >= symmetrically the minimum (SOME) or maximum (ALL);
//   - = with ALL needs at most one value: with two or more distinct
//     values it is constantly false;
//   - <> with SOME needs at most one value: with two or more distinct
//     values it is constantly true;
//   - = with SOME and <> with ALL need the full distinct set.
//
// The list must be non-empty: quantifiers over empty ranges are folded
// away by the Lemma 1 adaptation before strategy 4 applies.
func MakeQuantPred(vl *ValueList, op value.CmpOp, all bool) (QuantPred, error) {
	if vl.Len() == 0 {
		return nil, fmt.Errorf("collection: quantifier predicate over empty value list (fold empty ranges first)")
	}
	switch op {
	case value.OpLt, value.OpLe:
		// x op SOME v  <=>  x op max;   x op ALL v  <=>  x op min.
		bound := vl.Max()
		if all {
			bound = vl.Min()
		}
		return &boundPred{op: op, bound: bound}, nil
	case value.OpGt, value.OpGe:
		bound := vl.Min()
		if all {
			bound = vl.Max()
		}
		return &boundPred{op: op, bound: bound}, nil
	case value.OpEq:
		if !all {
			return &setPred{vl: vl, member: true}, nil
		}
		if vl.Len() > 1 {
			return constPred(false), nil
		}
		return &boundPred{op: value.OpEq, bound: vl.Min()}, nil
	case value.OpNe:
		if all {
			return &setPred{vl: vl, member: false}, nil
		}
		if vl.Len() > 1 {
			return constPred(true), nil
		}
		return &boundPred{op: value.OpNe, bound: vl.Min()}, nil
	default:
		return nil, fmt.Errorf("collection: unknown operator %v", op)
	}
}

// boundPred stores a single value: the min/max refinement and the
// singleton =ALL / <>SOME cases.
type boundPred struct {
	op    value.CmpOp
	bound value.Value
}

func (p *boundPred) Test(x value.Value) bool {
	ok, err := p.op.Apply(x, p.bound)
	return err == nil && ok
}
func (p *boundPred) Size() int      { return 1 }
func (p *boundPred) String() string { return fmt.Sprintf("x %v %v", p.op, p.bound) }

// setPred stores the full distinct set: the =SOME (membership) and
// <>ALL (non-membership) cases.
type setPred struct {
	vl     *ValueList
	member bool
}

func (p *setPred) Test(x value.Value) bool { return p.vl.Has(x) == p.member }
func (p *setPred) Size() int               { return p.vl.Len() }
func (p *setPred) String() string {
	if p.member {
		return fmt.Sprintf("x IN list[%d]", p.vl.Len())
	}
	return fmt.Sprintf("x NOT IN list[%d]", p.vl.Len())
}

// constPred is a constant decision: =ALL over two or more values, or
// <>SOME over two or more values.
type constPred bool

func (p constPred) Test(value.Value) bool { return bool(p) }
func (p constPred) Size() int             { return 0 }
func (p constPred) String() string {
	if p {
		return "always TRUE"
	}
	return "always FALSE"
}
