package collection

import (
	"testing"
	"testing/quick"

	"pascalr/internal/stats"
	"pascalr/internal/value"
)

func ref(s int) value.Value { return value.Ref(0, s, 0) }

func TestSingleList(t *testing.T) {
	sl := NewSingleList("c")
	sl.Add(ref(1))
	sl.Add(ref(2))
	sl.Add(ref(1)) // duplicate
	if sl.Len() != 2 {
		t.Errorf("Len = %d", sl.Len())
	}
	if !sl.Has(ref(1)) || sl.Has(ref(3)) {
		t.Errorf("Has wrong")
	}
	if got := sl.Refs(); len(got) != 2 || !value.Equal(got[0], ref(1)) {
		t.Errorf("Refs = %v", got)
	}
}

func TestIndexProbeEq(t *testing.T) {
	st := &stats.Counters{}
	ix := NewIndex("timetable", "tcnr")
	ix.Add(value.Int(10), ref(1))
	ix.Add(value.Int(10), ref(2))
	ix.Add(value.Int(20), ref(3))
	if ix.Len() != 3 {
		t.Errorf("Len = %d", ix.Len())
	}
	got := ix.ProbeEq(st, value.Int(10))
	if len(got) != 2 {
		t.Errorf("ProbeEq(10) = %v", got)
	}
	if len(ix.ProbeEq(st, value.Int(99))) != 0 {
		t.Errorf("ProbeEq(99) non-empty")
	}
	if st.IndexProbes != 2 {
		t.Errorf("probes = %d", st.IndexProbes)
	}
}

func collectProbe(ix *Index, op value.CmpOp, pv value.Value) []value.Value {
	var out []value.Value
	ix.Probe(nil, op, pv, func(r value.Value) { out = append(out, r) })
	return out
}

func TestIndexProbeOperators(t *testing.T) {
	ix := NewIndex("r", "a")
	// values 1,3,3,5 with refs 1,2,3,4
	ix.Add(value.Int(1), ref(1))
	ix.Add(value.Int(3), ref(2))
	ix.Add(value.Int(3), ref(3))
	ix.Add(value.Int(5), ref(4))

	cases := []struct {
		op   value.CmpOp
		pv   int64
		want int
	}{
		{value.OpEq, 3, 2},  // iv = 3
		{value.OpNe, 3, 2},  // iv != 3: 1 and 5
		{value.OpLt, 3, 1},  // 3 < iv: 5
		{value.OpLe, 3, 3},  // 3 <= iv: 3,3,5
		{value.OpGt, 3, 1},  // 3 > iv: 1
		{value.OpGe, 3, 3},  // 3 >= iv: 1,3,3
		{value.OpLt, 0, 4},  // all
		{value.OpGt, 10, 4}, // all
		{value.OpLt, 9, 0},  // none
	}
	for _, c := range cases {
		got := collectProbe(ix, c.op, value.Int(c.pv))
		if len(got) != c.want {
			t.Errorf("Probe(%v, %d) = %d refs, want %d", c.op, c.pv, len(got), c.want)
		}
	}
}

// Property: Probe(op, pv) returns exactly the entries where pv op iv.
func TestIndexProbeMatchesNaive(t *testing.T) {
	f := func(vals []int16, probe int16) bool {
		ix := NewIndex("r", "a")
		for i, v := range vals {
			ix.Add(value.Int(int64(v%10)), ref(i))
		}
		pv := value.Int(int64(probe % 10))
		for _, op := range value.AllOps {
			want := 0
			for _, v := range vals {
				ok, _ := op.Apply(pv, value.Int(int64(v%10)))
				if ok {
					want++
				}
			}
			if len(collectProbe(ix, op, pv)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIndirectJoin(t *testing.T) {
	// Producers emit each pair at most once, so the structure stores
	// pairs as given; set semantics are restored by the combination
	// phase's reference relations.
	ij := NewIndirectJoin("c", "t")
	ij.Add(ref(1), ref(10))
	ij.Add(ref(2), ref(20))
	if ij.Len() != 2 {
		t.Errorf("Len = %d", ij.Len())
	}
	if got := ij.Pairs(); !value.Equal(got[0][0], ref(1)) || !value.Equal(got[1][1], ref(20)) {
		t.Errorf("Pairs = %v", got)
	}
	other := NewIndirectJoin("c", "t")
	other.Add(ref(3), ref(30))
	ij.Merge(other)
	if ij.Len() != 3 || !value.Equal(ij.Pairs()[2][0], ref(3)) {
		t.Errorf("after merge: %v", ij.Pairs())
	}
}

func TestValueList(t *testing.T) {
	vl := NewValueList()
	if vl.Len() != 0 || vl.Min().IsValid() {
		t.Errorf("empty list state wrong")
	}
	for _, n := range []int64{5, 1, 9, 5, 3} {
		vl.Add(value.Int(n))
	}
	if vl.Len() != 4 {
		t.Errorf("distinct count = %d", vl.Len())
	}
	if vl.Min().AsInt() != 1 || vl.Max().AsInt() != 9 {
		t.Errorf("min/max = %v/%v", vl.Min(), vl.Max())
	}
	if !vl.Has(value.Int(3)) || vl.Has(value.Int(2)) {
		t.Errorf("Has wrong")
	}
}

func mkVL(vals ...int64) *ValueList {
	vl := NewValueList()
	for _, v := range vals {
		vl.Add(value.Int(v))
	}
	return vl
}

func TestMakeQuantPredRefinements(t *testing.T) {
	vl := mkVL(3, 7, 5)

	// < SOME keeps only the maximum.
	p, err := MakeQuantPred(vl, value.OpLt, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 1 {
		t.Errorf("<SOME size = %d, want 1", p.Size())
	}
	if !p.Test(value.Int(6)) || p.Test(value.Int(7)) {
		t.Errorf("<SOME test wrong")
	}
	// < ALL keeps only the minimum.
	p, _ = MakeQuantPred(vl, value.OpLt, true)
	if p.Size() != 1 || !p.Test(value.Int(2)) || p.Test(value.Int(3)) {
		t.Errorf("<ALL wrong")
	}
	// > SOME: x greater than the minimum.
	p, _ = MakeQuantPred(vl, value.OpGt, false)
	if !p.Test(value.Int(4)) || p.Test(value.Int(3)) {
		t.Errorf(">SOME wrong")
	}
	// >= ALL: x at least the maximum.
	p, _ = MakeQuantPred(vl, value.OpGe, true)
	if !p.Test(value.Int(7)) || p.Test(value.Int(6)) {
		t.Errorf(">=ALL wrong")
	}
	// = ALL over several values is constantly false, storing nothing.
	p, _ = MakeQuantPred(vl, value.OpEq, true)
	if p.Size() != 0 || p.Test(value.Int(5)) {
		t.Errorf("=ALL multi wrong: size=%d", p.Size())
	}
	// = ALL over a singleton is an equality test.
	p, _ = MakeQuantPred(mkVL(4), value.OpEq, true)
	if p.Size() != 1 || !p.Test(value.Int(4)) || p.Test(value.Int(5)) {
		t.Errorf("=ALL singleton wrong")
	}
	// <> SOME over several values is constantly true.
	p, _ = MakeQuantPred(vl, value.OpNe, false)
	if p.Size() != 0 || !p.Test(value.Int(5)) {
		t.Errorf("<>SOME multi wrong")
	}
	// <> SOME over a singleton tests inequality.
	p, _ = MakeQuantPred(mkVL(4), value.OpNe, false)
	if !p.Test(value.Int(5)) || p.Test(value.Int(4)) {
		t.Errorf("<>SOME singleton wrong")
	}
	// = SOME needs the full set.
	p, _ = MakeQuantPred(vl, value.OpEq, false)
	if p.Size() != 3 || !p.Test(value.Int(5)) || p.Test(value.Int(4)) {
		t.Errorf("=SOME wrong")
	}
	// <> ALL is non-membership.
	p, _ = MakeQuantPred(vl, value.OpNe, true)
	if !p.Test(value.Int(4)) || p.Test(value.Int(5)) {
		t.Errorf("<>ALL wrong")
	}
	// Empty list errors.
	if _, err := MakeQuantPred(NewValueList(), value.OpEq, false); err == nil {
		t.Errorf("empty value list accepted")
	}
}

// Property: every QuantPred decision equals the naive quantifier
// evaluation over the list.
func TestQuantPredMatchesNaive(t *testing.T) {
	f := func(vals []uint8, probe uint8) bool {
		if len(vals) == 0 {
			return true
		}
		vl := NewValueList()
		for _, v := range vals {
			vl.Add(value.Int(int64(v % 16)))
		}
		x := value.Int(int64(probe % 16))
		for _, op := range value.AllOps {
			for _, all := range []bool{false, true} {
				p, err := MakeQuantPred(vl, op, all)
				if err != nil {
					return false
				}
				want := all
				for _, v := range vl.Values() {
					ok, _ := op.Apply(x, v)
					if all && !ok {
						want = false
					}
					if !all && ok {
						want = true
					}
				}
				if p.Test(x) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
