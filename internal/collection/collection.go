// Package collection implements the collection phase's intermediate
// structures (section 3.2 of the paper): single lists for monadic join
// terms, indexes that associate component values with references,
// indirect joins for dyadic join terms, and the value lists of strategy
// 4 together with their single-value refinements (section 4.4).
//
// The structures are all expressible as PASCAL/R relations over
// reference components (Figure 2 of the paper); here they get dedicated
// representations so index probes are cheap.
package collection

import (
	"fmt"
	"sort"

	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// SingleList is a unary relation of references to elements satisfying
// monadic join terms, e.g. sl_prof or sl_csoph in Figure 2.
type SingleList struct {
	Var  string
	refs []value.Value
	set  map[string]struct{}
}

// NewSingleList creates an empty single list for a variable.
func NewSingleList(v string) *SingleList {
	return &SingleList{Var: v, set: make(map[string]struct{})}
}

// Add inserts a reference.
func (sl *SingleList) Add(ref value.Value) {
	k := value.EncodeKey([]value.Value{ref})
	if _, dup := sl.set[k]; dup {
		return
	}
	sl.set[k] = struct{}{}
	sl.refs = append(sl.refs, ref)
}

// Refs returns the references in insertion order.
func (sl *SingleList) Refs() []value.Value { return sl.refs }

// Len returns the number of references.
func (sl *SingleList) Len() int { return len(sl.refs) }

// Has reports whether a reference is present.
func (sl *SingleList) Has(ref value.Value) bool {
	_, ok := sl.set[value.EncodeKey([]value.Value{ref})]
	return ok
}

// IndexEntry associates one component value with one reference.
type IndexEntry struct {
	Val value.Value
	Ref value.Value
}

// Index is a (partial) index on one relation: component value ->
// references, e.g. ind_t_cnr in Figure 2. Equality probes use a hash
// table; ordered probes (<, <=, >, >=) use a sorted entry list built
// lazily on first use.
type Index struct {
	Rel string
	Col string

	eq      map[string][]value.Value
	entries []IndexEntry
	sorted  bool
	st      *stats.Counters
}

// NewIndex creates an empty index over rel.col.
func NewIndex(rel, col string, st *stats.Counters) *Index {
	return &Index{Rel: rel, Col: col, eq: make(map[string][]value.Value), st: st}
}

// Add indexes one element's component value.
func (ix *Index) Add(v, ref value.Value) {
	k := value.EncodeKey([]value.Value{v})
	ix.eq[k] = append(ix.eq[k], ref)
	ix.entries = append(ix.entries, IndexEntry{Val: v, Ref: ref})
	ix.sorted = false
}

// Len returns the number of indexed entries.
func (ix *Index) Len() int { return len(ix.entries) }

// Entries returns the indexed (value, reference) pairs; callers must not
// modify them. The order is unspecified.
func (ix *Index) Entries() []IndexEntry { return ix.entries }

// ProbeEq returns the references whose indexed value equals v.
func (ix *Index) ProbeEq(v value.Value) []value.Value {
	ix.st.CountProbes(1)
	return ix.eq[value.EncodeKey([]value.Value{v})]
}

// Probe calls fn with every reference whose indexed value iv satisfies
// "pv op iv" — the probe value on the left, as in a join term
// probe.col OP index.col. Equality uses the hash table; the ordered
// operators use binary search over the sorted entries; <> scans.
func (ix *Index) Probe(op value.CmpOp, pv value.Value, fn func(ref value.Value)) {
	ix.st.CountProbes(1)
	switch op {
	case value.OpEq:
		for _, ref := range ix.eq[value.EncodeKey([]value.Value{pv})] {
			fn(ref)
		}
	case value.OpNe:
		for _, e := range ix.entries {
			ix.st.CountComparisons(1)
			if !value.Equal(e.Val, pv) {
				fn(e.Ref)
			}
		}
	default:
		ix.ensureSorted()
		// entries sorted ascending by Val; find the range of indexed
		// values iv with "pv op iv" true.
		n := len(ix.entries)
		var lo, hi int // half-open [lo, hi)
		switch op {
		case value.OpLt: // pv < iv: iv strictly greater than pv
			lo = sort.Search(n, func(i int) bool { return value.MustCompare(ix.entries[i].Val, pv) > 0 })
			hi = n
		case value.OpLe: // pv <= iv
			lo = sort.Search(n, func(i int) bool { return value.MustCompare(ix.entries[i].Val, pv) >= 0 })
			hi = n
		case value.OpGt: // pv > iv: iv strictly less than pv
			lo = 0
			hi = sort.Search(n, func(i int) bool { return value.MustCompare(ix.entries[i].Val, pv) >= 0 })
		case value.OpGe: // pv >= iv
			lo = 0
			hi = sort.Search(n, func(i int) bool { return value.MustCompare(ix.entries[i].Val, pv) > 0 })
		}
		for i := lo; i < hi; i++ {
			fn(ix.entries[i].Ref)
		}
	}
}

func (ix *Index) ensureSorted() {
	if ix.sorted {
		return
	}
	sort.SliceStable(ix.entries, func(i, j int) bool {
		return value.MustCompare(ix.entries[i].Val, ix.entries[j].Val) < 0
	})
	ix.sorted = true
}

// IndirectJoin is a binary relation of reference pairs satisfying a
// dyadic join term, e.g. ij_c_t in Figure 2.
type IndirectJoin struct {
	LVar, RVar string
	pairs      [][2]value.Value
	set        map[string]struct{}
}

// NewIndirectJoin creates an empty indirect join between two variables.
func NewIndirectJoin(lv, rv string) *IndirectJoin {
	return &IndirectJoin{LVar: lv, RVar: rv, set: make(map[string]struct{})}
}

// Add inserts a reference pair.
func (ij *IndirectJoin) Add(l, r value.Value) {
	k := value.EncodeKey([]value.Value{l, r})
	if _, dup := ij.set[k]; dup {
		return
	}
	ij.set[k] = struct{}{}
	ij.pairs = append(ij.pairs, [2]value.Value{l, r})
}

// Pairs returns the reference pairs in insertion order.
func (ij *IndirectJoin) Pairs() [][2]value.Value { return ij.pairs }

// Len returns the number of pairs.
func (ij *IndirectJoin) Len() int { return len(ij.pairs) }

func (ij *IndirectJoin) String() string {
	return fmt.Sprintf("ij(%s,%s)[%d]", ij.LVar, ij.RVar, ij.Len())
}
