// Package collection implements the collection phase's intermediate
// structures (section 3.2 of the paper): single lists for monadic join
// terms, indexes that associate component values with references,
// indirect joins for dyadic join terms, and the value lists of strategy
// 4 together with their single-value refinements (section 4.4).
//
// The structures are all expressible as PASCAL/R relations over
// reference components (Figure 2 of the paper); here they get dedicated
// representations so index probes are cheap.
package collection

import (
	"fmt"
	"sort"
	"sync"

	"pascalr/internal/stats"
	"pascalr/internal/value"
)

// SingleList is a unary relation of references to elements satisfying
// monadic join terms, e.g. sl_prof or sl_csoph in Figure 2.
type SingleList struct {
	Var  string
	refs []value.Value
	set  map[string]struct{}
}

// NewSingleList creates an empty single list for a variable.
func NewSingleList(v string) *SingleList {
	return &SingleList{Var: v, set: make(map[string]struct{})}
}

// Add inserts a reference.
func (sl *SingleList) Add(ref value.Value) {
	k := value.EncodeKey([]value.Value{ref})
	if _, dup := sl.set[k]; dup {
		return
	}
	sl.set[k] = struct{}{}
	sl.refs = append(sl.refs, ref)
}

// Merge appends another single list built from a disjoint slice of the
// same scan (a shard): references append in order and the dedup set
// unions without re-encoding keys.
func (sl *SingleList) Merge(other *SingleList) {
	for k := range other.set {
		sl.set[k] = struct{}{}
	}
	sl.refs = append(sl.refs, other.refs...)
}

// Refs returns the references in insertion order.
func (sl *SingleList) Refs() []value.Value { return sl.refs }

// Len returns the number of references.
func (sl *SingleList) Len() int { return len(sl.refs) }

// Has reports whether a reference is present.
func (sl *SingleList) Has(ref value.Value) bool {
	_, ok := sl.set[value.EncodeKey([]value.Value{ref})]
	return ok
}

// IndexEntry associates one component value with one reference.
type IndexEntry struct {
	Val value.Value
	Ref value.Value
}

// Index is a (partial) index on one relation: component value ->
// references, e.g. ind_t_cnr in Figure 2. The build phase appends plain
// (value, reference) entries; the entry list is immutable once the
// build scan completes, and both access structures derive from it
// lazily, each under its own sync.Once so concurrent probers share one
// build — the equality hash table on the first =-probe, and a sorted
// *copy* of the entries on the first ordered probe. Because the
// insertion-order list is never mutated after the build, <>-probes and
// the equality map always see the same deterministic order no matter
// how probes interleave, scans that build an index nobody
// equality-probes never pay the hashing, and shard merges are plain
// slice concatenation.
//
// The build phase (Add, Merge) is single-writer: the scheduler
// guarantees an index's build scan completes before any probing scan
// starts. Probes are concurrent — parallel scan workers share built
// indexes — and count into explicit per-worker sinks instead of a
// field.
type Index struct {
	Rel string
	Col string

	entries []IndexEntry // insertion order; immutable once built

	eqOnce sync.Once
	eq     map[string][]value.Value

	sortOnce sync.Once
	sorted   []IndexEntry // ascending by Val, stable; derived copy
}

// NewIndex creates an empty index over rel.col.
func NewIndex(rel, col string) *Index {
	return &Index{Rel: rel, Col: col}
}

// Add indexes one element's component value.
func (ix *Index) Add(v, ref value.Value) {
	ix.entries = append(ix.entries, IndexEntry{Val: v, Ref: ref})
}

// Merge appends another index built from a disjoint slice of the same
// scan (a shard). Entries append in their insertion order, so absorbing
// shard-local indexes shard by shard reproduces exactly the entry (and
// derived per-value reference) order a serial scan would have built.
func (ix *Index) Merge(other *Index) {
	ix.entries = append(ix.entries, other.entries...)
}

// eqMap builds (once, first =-probe) and returns the equality hash
// table. Entries are immutable by then: builds complete before probes.
func (ix *Index) eqMap() map[string][]value.Value {
	ix.eqOnce.Do(func() {
		m := make(map[string][]value.Value, len(ix.entries))
		for _, e := range ix.entries {
			k := value.EncodeKey([]value.Value{e.Val})
			m[k] = append(m[k], e.Ref)
		}
		ix.eq = m
	})
	return ix.eq
}

// sortedEntries builds (once, first ordered probe) and returns a stable
// sorted copy of the entries; the insertion-order list stays untouched.
func (ix *Index) sortedEntries() []IndexEntry {
	ix.sortOnce.Do(func() {
		cp := append([]IndexEntry(nil), ix.entries...)
		sort.SliceStable(cp, func(i, j int) bool {
			return value.MustCompare(cp[i].Val, cp[j].Val) < 0
		})
		ix.sorted = cp
	})
	return ix.sorted
}

// Len returns the number of indexed entries.
func (ix *Index) Len() int { return len(ix.entries) }

// Entries returns the indexed (value, reference) pairs; callers must not
// modify them. The order is unspecified.
func (ix *Index) Entries() []IndexEntry { return ix.entries }

// ProbeEq returns the references whose indexed value equals v, counting
// one probe into st.
func (ix *Index) ProbeEq(st *stats.Counters, v value.Value) []value.Value {
	st.CountProbes(1)
	return ix.eqMap()[value.EncodeKey([]value.Value{v})]
}

// Probe calls fn with every reference whose indexed value iv satisfies
// "pv op iv" — the probe value on the left, as in a join term
// probe.col OP index.col. Equality uses the hash table; the ordered
// operators use binary search over the sorted entries; <> scans.
// Probes and comparisons count into st, the probing worker's sink.
func (ix *Index) Probe(st *stats.Counters, op value.CmpOp, pv value.Value, fn func(ref value.Value)) {
	st.CountProbes(1)
	switch op {
	case value.OpEq:
		for _, ref := range ix.eqMap()[value.EncodeKey([]value.Value{pv})] {
			fn(ref)
		}
	case value.OpNe:
		// Insertion order, always: the list is immutable post-build, so
		// emission order is deterministic regardless of which probes ran
		// before (serial and parallel runs agree byte for byte).
		for _, e := range ix.entries {
			st.CountComparisons(1)
			if !value.Equal(e.Val, pv) {
				fn(e.Ref)
			}
		}
	default:
		se := ix.sortedEntries()
		// entries sorted ascending by Val; find the range of indexed
		// values iv with "pv op iv" true.
		n := len(se)
		var lo, hi int // half-open [lo, hi)
		switch op {
		case value.OpLt: // pv < iv: iv strictly greater than pv
			lo = sort.Search(n, func(i int) bool { return value.MustCompare(se[i].Val, pv) > 0 })
			hi = n
		case value.OpLe: // pv <= iv
			lo = sort.Search(n, func(i int) bool { return value.MustCompare(se[i].Val, pv) >= 0 })
			hi = n
		case value.OpGt: // pv > iv: iv strictly less than pv
			lo = 0
			hi = sort.Search(n, func(i int) bool { return value.MustCompare(se[i].Val, pv) >= 0 })
		case value.OpGe: // pv >= iv
			lo = 0
			hi = sort.Search(n, func(i int) bool { return value.MustCompare(se[i].Val, pv) > 0 })
		}
		for i := lo; i < hi; i++ {
			fn(se[i].Ref)
		}
	}
}

// IndirectJoin is a binary relation of reference pairs satisfying a
// dyadic join term, e.g. ij_c_t in Figure 2. Pairs are stored as
// emitted, without a dedup table: every producer emits each pair at
// most once (a probing element is scanned once, an index entry is
// enumerated once), and the combination phase's reference relations
// deduplicate on ingestion anyway — the set semantics of the paper's
// Figure 2 relations are preserved downstream.
type IndirectJoin struct {
	LVar, RVar string
	pairs      [][2]value.Value
}

// NewIndirectJoin creates an empty indirect join between two variables.
func NewIndirectJoin(lv, rv string) *IndirectJoin {
	return &IndirectJoin{LVar: lv, RVar: rv}
}

// Add inserts a reference pair.
func (ij *IndirectJoin) Add(l, r value.Value) {
	ij.pairs = append(ij.pairs, [2]value.Value{l, r})
}

// Merge appends another indirect join built from a disjoint slice of
// the same scan (a shard — every pair's probing reference belongs to
// exactly one shard): pairs append in shard order.
func (ij *IndirectJoin) Merge(other *IndirectJoin) {
	ij.pairs = append(ij.pairs, other.pairs...)
}

// Pairs returns the reference pairs in insertion order.
func (ij *IndirectJoin) Pairs() [][2]value.Value { return ij.pairs }

// Len returns the number of pairs.
func (ij *IndirectJoin) Len() int { return len(ij.pairs) }

func (ij *IndirectJoin) String() string {
	return fmt.Sprintf("ij(%s,%s)[%d]", ij.LVar, ij.RVar, ij.Len())
}
