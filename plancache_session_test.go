package pascalr

import (
	"context"
	"reflect"
	"testing"

	"pascalr/internal/workload"
)

// TestPlanCacheSessionIsolation is the two-session differential proof
// that the shared plan cache cannot be poisoned across sessions with
// different execution options: compile-relevant options (planner
// choice, strategy set) key separate entries, execution-time options
// (parallelism, reference budget) are re-applied per call, and every
// cache hit is bit-identical — result rows and counter fingerprint —
// to a cold compile under the same session's options.
func TestPlanCacheSessionIsolation(t *testing.T) {
	script, err := workload.UniversityScript(40)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(script)
	if err != nil {
		t.Fatal(err)
	}
	const q = `[<e.ename, c.cnr> OF EACH e IN employees, EACH c IN courses, EACH t IN timetable:
		(e.enr = t.tenr) AND (c.cnr = t.tcnr)]`

	// Session A keeps the database defaults (static planner, serial);
	// session B plans cost-based and scans with two workers.
	a := db.NewSession()
	b := db.NewSession()
	b.SetOptions(WithCostBased(), WithParallelism(2))

	ctx := context.Background()
	run := func(f func() (*Result, error)) (string, [][]any) {
		t.Helper()
		db.ResetStats()
		res, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return db.StatsFingerprint(), res.Rows()
	}

	// Warm one cache entry per compile configuration.
	fpA1, rowsA1 := run(func() (*Result, error) { return a.Query(ctx, q) })
	fpB1, rowsB1 := run(func() (*Result, error) { return b.Query(ctx, q) })
	if got := db.plans.len(); got != 2 {
		t.Fatalf("plan cache entries = %d, want 2: the static and cost-based compiles must key separately", got)
	}

	// Hits must replay exactly what each session's cold compile does.
	fpA2, rowsA2 := run(func() (*Result, error) { return a.Query(ctx, q) })
	fpAcold, rowsAcold := run(func() (*Result, error) { return a.Query(ctx, q, WithoutPlanCache()) })
	if fpA1 != fpA2 || fpA2 != fpAcold {
		t.Errorf("session A fingerprints diverge: warm=%s hit=%s cold=%s", fpA1, fpA2, fpAcold)
	}
	if !reflect.DeepEqual(rowsA1, rowsA2) || !reflect.DeepEqual(rowsA2, rowsAcold) {
		t.Error("session A rows diverge between warm, hit, and cold runs")
	}

	fpB2, rowsB2 := run(func() (*Result, error) { return b.Query(ctx, q) })
	fpBcold, rowsBcold := run(func() (*Result, error) { return b.Query(ctx, q, WithoutPlanCache()) })
	if fpB1 != fpB2 || fpB2 != fpBcold {
		t.Errorf("session B fingerprints diverge: warm=%s hit=%s cold=%s", fpB1, fpB2, fpBcold)
	}
	if !reflect.DeepEqual(rowsB1, rowsB2) || !reflect.DeepEqual(rowsB2, rowsBcold) {
		t.Error("session B rows diverge between warm, hit, and cold runs")
	}

	// Cold compiles must not have grown the cache, and the interleaved
	// B executions must not have disturbed A's entry.
	if got := db.plans.len(); got != 2 {
		t.Fatalf("plan cache entries = %d after cold runs, want 2 (WithoutPlanCache must not insert)", got)
	}
	fpA3, rowsA3 := run(func() (*Result, error) { return a.Query(ctx, q) })
	if fpA3 != fpA1 || !reflect.DeepEqual(rowsA3, rowsA1) {
		t.Error("session A's cached plan changed after session B executions")
	}
}
